package verify

import (
	"bytes"
	"testing"
)

// FuzzDecodeVerifyDelta drives the delta-frame decoder with hostile input.
// Properties (mirroring the fleet consensus codec fuzz): the decoder never
// panics, every accepted frame re-encodes to the identical bytes (the
// canonical-form invariant the replicated decision log depends on), and
// the re-decode is idempotent.
func FuzzDecodeVerifyDelta(f *testing.F) {
	for _, d := range []*Delta{
		{Link: "seattle->denver"},
		NewDelta("atlanta->indianapolis", []Flip{EntryFlip("atlanta", 10, 2)}),
		NewDelta("houston->kansascity", []Flip{
			EntryFlip("houston", 10, 0),
			EntryFlip("atlanta", 10, 1),
			{Switch: "houston", Addr: 0xac100002, Plen: 32, Port: 3},
		}),
	} {
		frame := EncodeDelta(d)
		f.Add(frame)
		f.Add(frame[:len(frame)/2]) // truncation
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)/2] ^= 0x40 // bitflip
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{deltaVersion})
	f.Add([]byte{deltaVersion, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			return
		}
		out := EncodeDelta(d)
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted frame is not canonical:\n in %x\nout %x", data, out)
		}
		d2, err := DecodeDelta(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeDelta(d2), out) {
			t.Fatal("re-decode not idempotent")
		}
	})
}
