// Package verify is an incremental, atom-based forwarding-state verifier in
// the style of Delta-net: the installed prefixes of every switch partition
// the IPv4 space into atoms (maximal intervals whose packets share one
// longest-prefix-match route on every switch), and the network's forwarding
// behavior is a per-atom next-hop function over switches. A reroute delta
// touches only the atoms whose LPM winner it flips, so checking
// loop-freedom and blackhole-freedom of the post-commit state re-walks just
// those atoms — constant-ish work per commit instead of whole-network
// recomputation. This is what lets the fleet correlator verify every
// fast-reroute commit on the localization path (ISSUE 8 / ROADMAP
// "verify reroutes before committing them, in real time").
//
// The model is a snapshot: NewModel reads the live route tables once, and
// from then on Commit is the only mutation path. Callers that bypass the
// verifier (degraded-mode local protection, verify-unavailable fallback)
// must sync the model with an unchecked Commit so later checks see the
// true state.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"fancy/internal/netsim"
	"fancy/internal/topo"
)

// Next-hop sentinels in the per-atom forwarding function. Non-negative
// values are switch indices.
const (
	nhDrop    int32 = -1 // no route, or egress port with no attached peer
	nhDeliver int32 = -2 // egress port leads to a host: traffic delivered
)

// atom is a maximal address interval [lo, hi] (inclusive) on which every
// switch's LPM decision is constant.
type atom struct{ lo, hi uint32 }

// Stats counts the verifier's work, for telemetry and benchmark cells.
type Stats struct {
	Checks     uint64 // Check/Commit invocations
	AtomChecks uint64 // atoms re-walked, cumulative
	LastAtoms  int    // atoms re-walked by the most recent call
}

// Model is the atom-indexed forwarding state of one network.
type Model struct {
	switches  []string
	swIdx     map[string]int
	portPeer  []map[int]int32  // per switch: egress port -> peer index or sentinel
	installed []map[uint64]int // per switch: prefix key -> port-at-snapshot (presence = installed)
	atoms     []atom           // sorted, non-overlapping, covered intervals
	next      [][]int32        // [atom][switch] -> next hop
	win       [][]int8         // [atom][switch] -> winning prefix length, -1 if none

	Stats Stats
}

func pfxKey(addr uint32, plen int) uint64 { return uint64(addr)<<6 | uint64(plen) }

// span returns the inclusive address interval covered by addr/plen.
func span(addr uint32, plen int) (uint32, uint32) {
	if plen == 0 {
		return 0, ^uint32(0)
	}
	mask := ^uint32(0) << (32 - plen)
	return addr & mask, addr&mask | ^mask
}

// NewModel snapshots the network's installed forwarding state. Build it
// after routes are installed: prefixes added later are unknown to the model
// and deltas touching them fail Check with an error (the fleet treats that
// as verifier-unavailable and falls back to unverified commits).
func NewModel(net *topo.Network) *Model {
	m := &Model{swIdx: make(map[string]int)}
	for sw := range net.Switches {
		m.switches = append(m.switches, sw)
	}
	sort.Strings(m.switches)
	for i, sw := range m.switches {
		m.swIdx[sw] = i
	}

	// Port map: inter-switch ports forward to the peer switch, host-facing
	// ports deliver, anything else drops.
	m.portPeer = make([]map[int]int32, len(m.switches))
	for i, sw := range m.switches {
		pp := make(map[int]int32)
		for _, nb := range net.Neighbors(sw) {
			pp[net.PortOf[sw][nb]] = int32(m.swIdx[nb])
		}
		m.portPeer[i] = pp
	}
	var hosts []string
	for h := range net.Hosts {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		sw := net.HostAt(h)
		si, ok := m.swIdx[sw]
		if !ok {
			continue
		}
		m.portPeer[si][net.PortOf[sw][h]] = nhDeliver
	}

	// Collect every installed prefix; its boundaries cut the address space.
	type pfx struct {
		addr uint32
		plen int
	}
	perSW := make([][]pfx, len(m.switches))
	routeOf := make([]map[uint64]*netsim.Route, len(m.switches))
	m.installed = make([]map[uint64]int, len(m.switches))
	bset := make(map[uint64]bool) // 64-bit: hi+1 may be 2^32
	for i, sw := range m.switches {
		routeOf[i] = make(map[uint64]*netsim.Route)
		m.installed[i] = make(map[uint64]int)
		net.Switches[sw].Routes.Walk(func(addr uint32, plen int, r *netsim.Route) {
			perSW[i] = append(perSW[i], pfx{addr, plen})
			routeOf[i][pfxKey(addr, plen)] = r
			m.installed[i][pfxKey(addr, plen)] = r.Egress()
			lo, hi := span(addr, plen)
			bset[uint64(lo)] = true
			bset[uint64(hi)+1] = true
		})
	}
	var bounds []uint64
	for b := range bset {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })

	// Materialize the covered atoms and resolve their next-hop rows from
	// the snapshot. Uncovered intervals (no switch has a route) are
	// dropped: they can never become reachable through a reroute flip.
	for k := 0; k+1 < len(bounds); k++ {
		a := atom{lo: uint32(bounds[k]), hi: uint32(bounds[k+1] - 1)}
		row := make([]int32, len(m.switches))
		wrow := make([]int8, len(m.switches))
		covered := false
		for i := range m.switches {
			bestPlen := -1
			var best pfx
			for _, p := range perSW[i] {
				plo, phi := span(p.addr, p.plen)
				if plo <= a.lo && a.hi <= phi && p.plen > bestPlen {
					bestPlen, best = p.plen, p
				}
			}
			if bestPlen < 0 {
				row[i], wrow[i] = nhDrop, -1
				continue
			}
			covered = true
			wrow[i] = int8(bestPlen)
			row[i] = m.resolvePort(i, routeOf[i][pfxKey(best.addr, best.plen)].Egress())
		}
		if covered {
			m.atoms = append(m.atoms, a)
			m.next = append(m.next, row)
			m.win = append(m.win, wrow)
		}
	}
	return m
}

// resolvePort maps an egress port at switch index si to a next-hop value.
func (m *Model) resolvePort(si, port int) int32 {
	if nh, ok := m.portPeer[si][port]; ok {
		return nh
	}
	return nhDrop
}

// Atoms reports how many atoms the model tracks.
func (m *Model) Atoms() int { return len(m.atoms) }

// Switches returns the modeled switch names, sorted.
func (m *Model) Switches() []string { return append([]string(nil), m.switches...) }

// overlay computes the per-atom next-hop overrides a delta induces, plus
// the sorted list of dirty atom indices. A flip applies to an atom only
// when the flipped prefix is that atom's LPM winner at the flip's switch —
// flipping a /24 must not re-route traffic a longer /32 owns.
func (m *Model) overlay(d *Delta) (map[int64]int32, []int, error) {
	ov := make(map[int64]int32)
	dirtySet := make(map[int]bool)
	for _, fl := range d.Flips {
		si, ok := m.swIdx[fl.Switch]
		if !ok {
			return nil, nil, fmt.Errorf("verify: unknown switch %q", fl.Switch)
		}
		if fl.Plen < 0 || fl.Plen > 32 {
			return nil, nil, fmt.Errorf("verify: invalid prefix length %d", fl.Plen)
		}
		if _, ok := m.installed[si][pfxKey(fl.Addr, fl.Plen)]; !ok {
			return nil, nil, fmt.Errorf("verify: prefix %s/%d not installed at %s (model predates it)",
				ipStr(fl.Addr), fl.Plen, fl.Switch)
		}
		lo, hi := span(fl.Addr, fl.Plen)
		k := sort.Search(len(m.atoms), func(k int) bool { return m.atoms[k].hi >= lo })
		for ; k < len(m.atoms) && m.atoms[k].lo <= hi; k++ {
			if int(m.win[k][si]) != fl.Plen {
				continue
			}
			ov[m.cell(k, si)] = m.resolvePort(si, fl.Port)
			dirtySet[k] = true
		}
	}
	dirty := make([]int, 0, len(dirtySet))
	for k := range dirtySet {
		dirty = append(dirty, k)
	}
	sort.Ints(dirty)
	return ov, dirty, nil
}

func (m *Model) cell(atomIdx, swIdx int) int64 {
	return int64(atomIdx)*int64(len(m.switches)) + int64(swIdx)
}

// Check evaluates the post-commit state of d without applying it: every
// dirty atom is re-walked from all ingress switches for forwarding cycles
// and blackholes. The model is unchanged.
func (m *Model) Check(d *Delta) (*Verdict, error) {
	ov, dirty, err := m.overlay(d)
	if err != nil {
		return nil, err
	}
	return m.walkAtoms(dirty, ov), nil
}

// Commit applies d to the model unconditionally — callers gate on Check —
// and returns the post-state verdict over the touched atoms (useful for
// auditing unverified fallback commits).
func (m *Model) Commit(d *Delta) (*Verdict, error) {
	ov, dirty, err := m.overlay(d)
	if err != nil {
		return nil, err
	}
	for _, k := range dirty {
		for si := range m.switches {
			if v, ok := ov[m.cell(k, si)]; ok {
				m.next[k][si] = v
			}
		}
	}
	return m.walkAtoms(dirty, nil), nil
}

// Audit re-walks every atom of the committed state from scratch — the
// non-incremental ground truth, used by experiments and the fancy-fleet
// demo to prove the end state is loop- and blackhole-free.
func (m *Model) Audit() *Verdict {
	all := make([]int, len(m.atoms))
	for k := range all {
		all[k] = k
	}
	return m.walkAtoms(all, nil)
}

func (m *Model) walkAtoms(dirty []int, ov map[int64]int32) *Verdict {
	m.Stats.Checks++
	m.Stats.AtomChecks += uint64(len(dirty))
	m.Stats.LastAtoms = len(dirty)
	v := &Verdict{Atoms: len(dirty)}
	for _, k := range dirty {
		loop, holes := m.walkAtom(k, ov)
		if len(loop)+len(holes) > 0 {
			v.Unsafe = append(v.Unsafe, AtomVerdict{
				Lo: m.atoms[k].lo, Hi: m.atoms[k].hi, Loop: loop, Holes: holes,
			})
		}
	}
	return v
}

// Walk states for one atom's colored traversal.
const (
	stUnvisited int8 = iota
	stOnPath
	stDelivers
	stLoops
	stDrops
)

// walkAtom chases the atom's next-hop function from every switch, coloring
// as it goes so each switch is resolved once. Loop lists the switches on a
// forwarding cycle; holes lists every ingress switch whose traffic dies in
// a drop. Both sorted.
func (m *Model) walkAtom(k int, ov map[int64]int32) (loop, holes []string) {
	nextOf := func(si int) int32 {
		if ov != nil {
			if v, ok := ov[m.cell(k, si)]; ok {
				return v
			}
		}
		return m.next[k][si]
	}
	state := make([]int8, len(m.switches))
	var path []int
	inLoop := make([]bool, len(m.switches))
	for s := range m.switches {
		if state[s] != stUnvisited {
			continue
		}
		path = path[:0]
		cur := s
		var term int8
		for {
			if state[cur] == stOnPath {
				// New cycle: members are the path suffix from cur.
				for j := len(path) - 1; j >= 0; j-- {
					inLoop[path[j]] = true
					if path[j] == cur {
						break
					}
				}
				term = stLoops
				break
			}
			if state[cur] != stUnvisited {
				term = state[cur] // resolved by an earlier walk
				break
			}
			state[cur] = stOnPath
			path = append(path, cur)
			nh := nextOf(cur)
			if nh == nhDeliver {
				term = stDelivers
				break
			}
			if nh == nhDrop {
				term = stDrops
				break
			}
			cur = int(nh)
		}
		for _, p := range path {
			state[p] = term
		}
	}
	for si, sw := range m.switches {
		if inLoop[si] {
			loop = append(loop, sw)
		}
		if state[si] == stDrops {
			holes = append(holes, sw)
		}
	}
	return loop, holes
}

// AtomVerdict describes one unsafe atom: the address interval, the switches
// forming a forwarding cycle, and the ingress switches whose traffic
// blackholes.
type AtomVerdict struct {
	Lo, Hi uint32
	Loop   []string
	Holes  []string
}

// Verdict is the result of one check: how many atoms were re-walked and
// which of them are unsafe in the evaluated state. The canonical String
// form is what the fleet attaches to rejection events and what the oracle
// property test byte-compares.
type Verdict struct {
	Atoms  int
	Unsafe []AtomVerdict
}

// Safe reports whether the evaluated state is loop- and blackhole-free on
// every checked atom.
func (v *Verdict) Safe() bool { return len(v.Unsafe) == 0 }

// Loops counts unsafe atoms with a forwarding cycle.
func (v *Verdict) Loops() int {
	n := 0
	for _, a := range v.Unsafe {
		if len(a.Loop) > 0 {
			n++
		}
	}
	return n
}

// Blackholes counts unsafe atoms with at least one blackholed ingress.
func (v *Verdict) Blackholes() int {
	n := 0
	for _, a := range v.Unsafe {
		if len(a.Holes) > 0 {
			n++
		}
	}
	return n
}

func (v *Verdict) String() string {
	if v.Safe() {
		return fmt.Sprintf("safe: %d atom(s) checked", v.Atoms)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "unsafe (%d atom(s) checked):", v.Atoms)
	for _, a := range v.Unsafe {
		fmt.Fprintf(&b, " atom %s-%s", ipStr(a.Lo), ipStr(a.Hi))
		if len(a.Loop) > 0 {
			fmt.Fprintf(&b, " loop[%s]", strings.Join(a.Loop, " "))
		}
		if len(a.Holes) > 0 {
			fmt.Fprintf(&b, " hole[%s]", strings.Join(a.Holes, " "))
		}
		b.WriteByte(';')
	}
	return b.String()
}

func ipStr(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", a>>24, a>>16&0xff, a>>8&0xff, a&0xff)
}
