package verify

import (
	"fmt"
	"sort"
)

// OracleCheck recomputes Check(d)'s verdict by brute force: a linear scan
// over every atom for delta applicability, then bounded hop-by-hop path
// enumeration from every ingress switch — no coloring, no binary search,
// no shared state with the incremental walker. The property test asserts
// the two verdicts are byte-identical on randomized reroute batches.
func (m *Model) OracleCheck(d *Delta) (*Verdict, error) {
	type applied struct {
		si   int
		plen int
		nh   int32
	}
	var flips []applied
	for _, fl := range d.Flips {
		si, ok := m.swIdx[fl.Switch]
		if !ok {
			return nil, fmt.Errorf("verify: unknown switch %q", fl.Switch)
		}
		if fl.Plen < 0 || fl.Plen > 32 {
			return nil, fmt.Errorf("verify: invalid prefix length %d", fl.Plen)
		}
		if _, ok := m.installed[si][pfxKey(fl.Addr, fl.Plen)]; !ok {
			return nil, fmt.Errorf("verify: prefix %s/%d not installed at %s (model predates it)",
				ipStr(fl.Addr), fl.Plen, fl.Switch)
		}
		flips = append(flips, applied{si, fl.Plen, m.resolvePort(si, fl.Port)})
	}
	// Which atoms does the delta touch? Same applicability rule, by scan.
	flipSpans := make([][2]uint32, len(d.Flips))
	for i, fl := range d.Flips {
		lo, hi := span(fl.Addr, fl.Plen)
		flipSpans[i] = [2]uint32{lo, hi}
	}
	v := &Verdict{}
	for k, a := range m.atoms {
		touched := false
		over := make(map[int]int32)
		for i, fl := range flips {
			if flipSpans[i][0] <= a.lo && a.hi <= flipSpans[i][1] &&
				int(m.win[k][fl.si]) == fl.plen {
				touched = true
				over[fl.si] = fl.nh
			}
		}
		if !touched {
			continue
		}
		v.Atoms++
		loop, holes := m.enumerateAtom(k, over)
		if len(loop)+len(holes) > 0 {
			v.Unsafe = append(v.Unsafe, AtomVerdict{Lo: a.lo, Hi: a.hi, Loop: loop, Holes: holes})
		}
	}
	return v, nil
}

// enumerateAtom walks up to V hops from each ingress switch independently.
// A walk still going after V hops is inside a cycle by pigeonhole; the
// cycle members are collected by walking it once more.
func (m *Model) enumerateAtom(k int, over map[int]int32) (loop, holes []string) {
	nextOf := func(si int) int32 {
		if v, ok := over[si]; ok {
			return v
		}
		return m.next[k][si]
	}
	V := len(m.switches)
	loopSet := make(map[int]bool)
	holeSet := make(map[int]bool)
	for s := 0; s < V; s++ {
		cur, outcome := s, 0 // 0 = still walking
		for i := 0; i < V; i++ {
			nh := nextOf(cur)
			if nh == nhDeliver {
				outcome = 1
				break
			}
			if nh == nhDrop {
				outcome = 2
				break
			}
			cur = int(nh)
		}
		switch outcome {
		case 1: // delivered
		case 2:
			holeSet[s] = true
		default: // cur is on a cycle after V hops
			start := cur
			for {
				loopSet[cur] = true
				cur = int(nextOf(cur))
				if cur == start {
					break
				}
			}
		}
	}
	for si := 0; si < V; si++ {
		if loopSet[si] {
			loop = append(loop, m.switches[si])
		}
		if holeSet[si] {
			holes = append(holes, m.switches[si])
		}
	}
	sort.Strings(loop)
	sort.Strings(holes)
	return loop, holes
}
