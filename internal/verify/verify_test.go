package verify

import (
	"math/rand"
	"strings"
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/topo"
)

const entry = netsim.EntryID(10)

// abilene builds the standard test network: Abilene, a source host at
// seattle, the entry's owner host at denver, shortest paths installed.
func abilene(t *testing.T) *topo.Network {
	t.Helper()
	s := sim.New(1)
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "hsrc", Attach: "seattle"},
		{Name: "hdst", Attach: "denver"},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "hdst"}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestModelCleanStateIsSafe(t *testing.T) {
	n := abilene(t)
	m := NewModel(n)
	if m.Atoms() == 0 {
		t.Fatal("no atoms")
	}
	v := m.Audit()
	if !v.Safe() {
		t.Fatalf("shortest-path state not safe: %s", v)
	}
	if v.Atoms != m.Atoms() {
		t.Fatalf("audit walked %d atoms, model has %d", v.Atoms, m.Atoms())
	}
}

// TestComposedFlipsFormLoop reproduces the chaos scenario's core: two
// individually-valid backup flips (seattle→sunnyvale, sunnyvale→seattle)
// compose into a forwarding loop, which the incremental check catches
// before commit; the repair candidate via losangeles is safe.
func TestComposedFlipsFormLoop(t *testing.T) {
	n := abilene(t)
	m := NewModel(n)

	toSun := n.PortOf["seattle"]["sunnyvale"]
	toSea := n.PortOf["sunnyvale"]["seattle"]
	toLA := n.PortOf["sunnyvale"]["losangeles"]

	first := NewDelta("seattle->denver", []Flip{EntryFlip("seattle", entry, toSun)})
	v, err := m.Check(first)
	if err != nil || !v.Safe() {
		t.Fatalf("first flip should be safe: %v %s", err, v)
	}
	if v.Atoms == 0 || v.Atoms >= m.Atoms() {
		t.Fatalf("incremental check walked %d of %d atoms", v.Atoms, m.Atoms())
	}
	if _, err := m.Commit(first); err != nil {
		t.Fatal(err)
	}

	second := NewDelta("sunnyvale->denver", []Flip{EntryFlip("sunnyvale", entry, toSea)})
	v, err = m.Check(second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Safe() {
		t.Fatal("composed flips should form a loop")
	}
	if v.Loops() == 0 {
		t.Fatalf("expected a loop verdict, got %s", v)
	}
	if !strings.Contains(v.String(), "loop[seattle sunnyvale]") {
		t.Fatalf("loop members wrong: %s", v)
	}
	// The only alternate at sunnyvale loops too: losangeles default-routes
	// to denver through sunnyvale. The triangle has no safe repair — this
	// is the hold-and-retry case, not the alternate-backup case.
	alt := NewDelta("sunnyvale->denver", []Flip{EntryFlip("sunnyvale", entry, toLA)})
	v, err = m.Check(alt)
	if err != nil {
		t.Fatal(err)
	}
	if v.Safe() {
		t.Fatalf("losangeles detour should loop back through sunnyvale: %s", v)
	}
	// Check must not have mutated the model: the committed single-flip
	// state is still safe.
	if a := m.Audit(); !a.Safe() {
		t.Fatalf("audit after checks unsafe (Check mutated the model): %s", a)
	}
}

// TestAlternateRepairIsSafe is the chaos suite's repair scenario: the entry
// lives behind kansascity, atlanta has flipped to houston (safe), and
// houston's configured backup (atlanta) composes into a loop — but the
// alternate via losangeles reaches kansascity through sunnyvale→denver,
// avoiding both flipped switches.
func TestAlternateRepairIsSafe(t *testing.T) {
	s := sim.New(1)
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "hsrc", Attach: "washington"},
		{Name: "hdst", Attach: "kansascity"},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "hdst"}); err != nil {
		t.Fatal(err)
	}
	m := NewModel(n)

	first := NewDelta("atlanta->indianapolis",
		[]Flip{EntryFlip("atlanta", entry, n.PortOf["atlanta"]["houston"])})
	if v, err := m.Check(first); err != nil || !v.Safe() {
		t.Fatalf("atlanta->houston flip should be safe: %v %s", err, v)
	}
	if _, err := m.Commit(first); err != nil {
		t.Fatal(err)
	}

	bad := NewDelta("houston->kansascity",
		[]Flip{EntryFlip("houston", entry, n.PortOf["houston"]["atlanta"])})
	v, err := m.Check(bad)
	if err != nil {
		t.Fatal(err)
	}
	if v.Safe() || !strings.Contains(v.String(), "loop[atlanta houston]") {
		t.Fatalf("configured backup should loop atlanta<->houston: %s", v)
	}

	repair := NewDelta("houston->kansascity",
		[]Flip{EntryFlip("houston", entry, n.PortOf["houston"]["losangeles"])})
	v, err = m.Check(repair)
	if err != nil || !v.Safe() {
		t.Fatalf("repair via losangeles should be safe: %v %s", err, v)
	}
	if _, err := m.Commit(repair); err != nil {
		t.Fatal(err)
	}
	if a := m.Audit(); !a.Safe() {
		t.Fatalf("post-repair audit unsafe: %s", a)
	}
}

func TestBlackholeDetection(t *testing.T) {
	n := abilene(t)
	m := NewModel(n)
	// Port 999 exists on no switch: everything upstream blackholes.
	d := NewDelta("x", []Flip{EntryFlip("denver", entry, 999)})
	v, err := m.Check(d)
	if err != nil {
		t.Fatal(err)
	}
	if v.Safe() || v.Blackholes() == 0 {
		t.Fatalf("expected blackhole verdict, got %s", v)
	}
	// denver is the entry's delivery switch: every ingress drops there.
	if !strings.Contains(v.String(), "hole[") || !strings.Contains(v.String(), "denver") {
		t.Fatalf("hole verdict wrong: %s", v)
	}
}

func TestUninstalledPrefixErrors(t *testing.T) {
	n := abilene(t)
	m := NewModel(n)
	d := NewDelta("x", []Flip{{Switch: "seattle", Addr: 0xc0000000, Plen: 8, Port: 0}})
	if _, err := m.Check(d); err == nil {
		t.Fatal("uninstalled prefix must error")
	}
	d = NewDelta("x", []Flip{EntryFlip("nowhere", entry, 0)})
	if _, err := m.Check(d); err == nil {
		t.Fatal("unknown switch must error")
	}
}

// TestLPMWinnerGating: flipping a /24 must not move traffic owned by a
// longer /32 (the host route) — only atoms whose LPM winner is the flipped
// prefix are touched.
func TestLPMWinnerGating(t *testing.T) {
	n := abilene(t)
	m := NewModel(n)
	hostAddr := n.HostAddr("hdst")
	toSun := n.PortOf["seattle"]["sunnyvale"]
	d := NewDelta("x", []Flip{EntryFlip("seattle", entry, toSun)})
	ov, dirty, err := m.overlay(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) == 0 {
		t.Fatal("entry flip touched no atoms")
	}
	si := m.swIdx["seattle"]
	for _, k := range dirty {
		if m.atoms[k].lo <= hostAddr && hostAddr <= m.atoms[k].hi {
			t.Fatalf("entry /24 flip touched the host /32 atom [%s-%s]",
				ipStr(m.atoms[k].lo), ipStr(m.atoms[k].hi))
		}
		if _, ok := ov[m.cell(k, si)]; !ok {
			t.Fatal("dirty atom without an override at the flipped switch")
		}
	}
}

// TestIncrementalMatchesOracle is the property test: on randomized reroute
// batches over Abilene, the incremental verdict is byte-identical to the
// brute-force all-pairs path-enumeration oracle, including as the model
// evolves through commits.
func TestIncrementalMatchesOracle(t *testing.T) {
	s := sim.New(7)
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "h1", Attach: "seattle"},
		{Name: "h2", Attach: "denver"},
		{Name: "h3", Attach: "atlanta"},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[netsim.EntryID]string{}
	hostNames := []string{"h1", "h2", "h3"}
	for e := netsim.EntryID(1); e <= 8; e++ {
		owners[e] = hostNames[int(e)%len(hostNames)]
	}
	if err := n.InstallShortestPaths(owners); err != nil {
		t.Fatal(err)
	}
	m := NewModel(n)
	sws := m.Switches()

	rng := rand.New(rand.NewSource(20220822))
	for trial := 0; trial < 400; trial++ {
		nf := 1 + rng.Intn(4)
		flips := make([]Flip, 0, nf)
		for i := 0; i < nf; i++ {
			sw := sws[rng.Intn(len(sws))]
			var fl Flip
			if rng.Intn(4) == 0 { // host /32
				h := hostNames[rng.Intn(len(hostNames))]
				fl = Flip{Switch: sw, Addr: n.HostAddr(h), Plen: 32}
			} else {
				fl = EntryFlip(sw, netsim.EntryID(1+rng.Intn(8)), 0)
			}
			// Candidate egress: a real neighbor port, sometimes a dead one.
			nbs := n.Neighbors(sw)
			if rng.Intn(8) == 0 {
				fl.Port = 999
			} else {
				fl.Port = n.PortOf[sw][nbs[rng.Intn(len(nbs))]]
			}
			flips = append(flips, fl)
		}
		d := NewDelta("prop", flips)
		got, err1 := m.Check(d)
		want, err2 := m.OracleCheck(d)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: errors %v / %v", trial, err1, err2)
		}
		if got.String() != want.String() {
			t.Fatalf("trial %d: incremental %q != oracle %q", trial, got, want)
		}
		// Occasionally commit to evolve the state the next trials verify.
		if rng.Intn(3) == 0 {
			if _, err := m.Commit(d); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	d := NewDelta("seattle->denver", []Flip{
		EntryFlip("sunnyvale", 10, 3),
		EntryFlip("seattle", 10, 1),
		{Switch: "seattle", Addr: 0xac100002, Plen: 32, Port: 0},
	})
	b := EncodeDelta(d)
	got, err := DecodeDelta(b)
	if err != nil {
		t.Fatal(err)
	}
	b2 := EncodeDelta(got)
	if string(b) != string(b2) {
		t.Fatalf("re-encode mismatch:\n%x\n%x", b, b2)
	}
	if len(got.Flips) != 3 || got.Flips[0].Switch != "seattle" {
		t.Fatalf("bad decode: %+v", got)
	}
	// Out-of-order flips are non-canonical.
	swap := *d
	swap.Flips = []Flip{d.Flips[2], d.Flips[0], d.Flips[1]}
	if _, err := DecodeDelta(EncodeDelta(&swap)); err == nil {
		t.Fatal("unsorted frame must be rejected")
	}
	// Trailing bytes are rejected.
	if _, err := DecodeDelta(append(b, 0)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
	if _, err := DecodeDelta(nil); err == nil {
		t.Fatal("empty frame must be rejected")
	}
}

func TestNewDeltaDedupesLaterWins(t *testing.T) {
	d := NewDelta("x", []Flip{
		EntryFlip("seattle", 10, 1),
		EntryFlip("seattle", 10, 7),
	})
	if len(d.Flips) != 1 || d.Flips[0].Port != 7 {
		t.Fatalf("later flip should win: %+v", d.Flips)
	}
}
