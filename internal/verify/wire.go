package verify

import (
	"encoding/binary"
	"fmt"
	"sort"

	"fancy/internal/netsim"
)

// The delta frame is the replicated form of one gate decision: the fleet
// stores it in the consensus checkpoint so a restarted or failed-over
// correlator can replay committed flips into a fresh model. Same canonical
// rules as the fleet consensus codec: one version byte, minimal varints,
// strictly ascending flips, no trailing bytes — every accepted frame
// re-encodes to the identical bytes (FuzzDecodeVerifyDelta's property).

const deltaVersion = 1

// Flip is one prefix's egress change at one switch.
type Flip struct {
	Switch string
	Addr   uint32
	Plen   int
	Port   int
}

// EntryFlip builds the common case: diverting an EntryID's /24 under the
// EntryAddr addressing scheme.
func EntryFlip(sw string, e netsim.EntryID, port int) Flip {
	return Flip{Switch: sw, Addr: uint32(e) << 8, Plen: 24, Port: port}
}

// Delta is one reroute commit: a set of flips attributed to a localized
// link. NewDelta canonicalizes: flips sorted by (Switch, Addr, Plen), later
// duplicates of the same prefix winning.
type Delta struct {
	Link  string
	Flips []Flip
}

// NewDelta canonicalizes the flip set.
func NewDelta(link string, flips []Flip) *Delta {
	sort.SliceStable(flips, func(a, b int) bool {
		if flips[a].Switch != flips[b].Switch {
			return flips[a].Switch < flips[b].Switch
		}
		if flips[a].Addr != flips[b].Addr {
			return flips[a].Addr < flips[b].Addr
		}
		return flips[a].Plen < flips[b].Plen
	})
	out := flips[:0]
	for i, fl := range flips {
		if i+1 < len(flips) {
			n := flips[i+1]
			if n.Switch == fl.Switch && n.Addr == fl.Addr && n.Plen == fl.Plen {
				continue // superseded by the later flip
			}
		}
		out = append(out, fl)
	}
	return &Delta{Link: link, Flips: out}
}

// EncodeDelta emits the canonical frame.
func EncodeDelta(d *Delta) []byte {
	b := []byte{deltaVersion}
	b = appendStr(b, d.Link)
	b = binary.AppendUvarint(b, uint64(len(d.Flips)))
	for _, fl := range d.Flips {
		b = appendStr(b, fl.Switch)
		b = binary.AppendUvarint(b, uint64(fl.Addr))
		b = append(b, byte(fl.Plen))
		b = binary.AppendVarint(b, int64(fl.Port))
	}
	return b
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// DecodeDelta parses a frame, rejecting every non-canonical encoding:
// wrong version, non-minimal varints, out-of-range fields, flips not in
// strictly ascending (Switch, Addr, Plen) order, or trailing bytes.
func DecodeDelta(data []byte) (*Delta, error) {
	r := &deltaReader{b: data}
	if v := r.byte(); v != deltaVersion {
		return nil, fmt.Errorf("verify: bad delta version %d", v)
	}
	d := &Delta{Link: r.str()}
	n := r.count()
	for i := 0; i < n && !r.bad; i++ {
		fl := Flip{Switch: r.str()}
		addr := r.u64()
		if addr > 0xffffffff {
			r.fail()
			break
		}
		fl.Addr = uint32(addr)
		fl.Plen = int(r.byte())
		if fl.Plen > 32 {
			r.fail()
			break
		}
		fl.Port = int(r.i64())
		if i > 0 {
			p := d.Flips[i-1]
			if fl.Switch < p.Switch ||
				(fl.Switch == p.Switch && fl.Addr < p.Addr) ||
				(fl.Switch == p.Switch && fl.Addr == p.Addr && fl.Plen <= p.Plen) {
				r.fail()
				break
			}
		}
		d.Flips = append(d.Flips, fl)
	}
	if r.bad || len(r.b) != 0 {
		return nil, fmt.Errorf("verify: malformed delta frame")
	}
	return d, nil
}

// deltaReader mirrors the fleet codec's strict reader: any malformed field
// poisons the rest of the parse.
type deltaReader struct {
	b   []byte
	bad bool
}

func (r *deltaReader) fail() {
	r.bad = true
	r.b = nil
}

func (r *deltaReader) byte() byte {
	if r.bad || len(r.b) == 0 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *deltaReader) u64() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 || (n > 1 && r.b[n-1] == 0) { // reject non-minimal encodings
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *deltaReader) i64() int64 {
	if r.bad {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 || (n > 1 && r.b[n-1] == 0) {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

// count reads a collection length, bounded by the remaining input so a
// hostile frame cannot force a huge allocation.
func (r *deltaReader) count() int {
	v := r.u64()
	if r.bad || v > uint64(len(r.b)) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *deltaReader) str() string {
	n := r.count()
	if r.bad {
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}
