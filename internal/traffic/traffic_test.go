package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/tcp"
)

func TestSteadyEntryRateAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := SteadyEntry(5, 1e6, 50, 10*sim.Second, rng)
	// ≈50 flows/s × 10 s = ≈500 flows.
	if len(specs) < 450 || len(specs) > 550 {
		t.Errorf("flows = %d, want ≈500", len(specs))
	}
	var bytes int64
	for _, f := range specs {
		if f.Entry != 5 {
			t.Fatalf("wrong entry %d", f.Entry)
		}
		if f.Start < 0 || f.Start >= 11*sim.Second {
			t.Fatalf("start %v out of range", f.Start)
		}
		bytes += f.Bytes
	}
	// Aggregate ≈1 Mbps over 10 s = 1.25 MB.
	rate := float64(bytes) * 8 / 10
	if rate < 0.8e6 || rate > 1.2e6 {
		t.Errorf("aggregate rate = %.0f bps, want ≈1e6", rate)
	}
}

func TestSteadyEntryDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if SteadyEntry(1, 0, 50, sim.Second, rng) != nil {
		t.Error("zero rate should yield no flows")
	}
	if SteadyEntry(1, 1e6, 0, sim.Second, rng) != nil {
		t.Error("zero fps should yield no flows")
	}
	if SteadyEntry(1, 1e6, 50, 0, rng) != nil {
		t.Error("zero duration should yield no flows")
	}
}

func TestSteadyEntryTinyFlowsHaveMinimumSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := SteadyEntry(1, 100, 10, 5*sim.Second, rng) // 10 bps per flow
	for _, f := range specs {
		if f.Bytes < 40 {
			t.Fatalf("flow bytes = %d, want ≥40", f.Bytes)
		}
	}
}

func TestZipfShares(t *testing.T) {
	shares := ZipfShares(100, 1.0)
	if len(shares) != 100 {
		t.Fatalf("len = %d", len(shares))
	}
	var sum float64
	for i, s := range shares {
		sum += s
		if i > 0 && s > shares[i-1] {
			t.Fatal("shares must be non-increasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v, want 1", sum)
	}
	// Rank-1 share with s=1 over 100 entries ≈ 1/H(100) ≈ 0.193.
	if shares[0] < 0.15 || shares[0] > 0.25 {
		t.Errorf("top share = %v, want ≈0.19", shares[0])
	}
	if ZipfShares(0, 1) != nil {
		t.Error("n=0 must return nil")
	}
}

func TestPropertyZipfSharesNormalized(t *testing.T) {
	f := func(n uint8, sRaw uint8) bool {
		if n == 0 {
			return true
		}
		s := 0.5 + float64(sRaw%20)/10 // 0.5 .. 2.4
		shares := ZipfShares(int(n), s)
		var sum float64
		for _, v := range shares {
			if v <= 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestZipfWorkloadSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	specs := ZipfWorkload(50, 10e6, 100, 1.1, 10*sim.Second, rng)
	bytes := make(map[netsim.EntryID]int64)
	for _, f := range specs {
		bytes[f.Entry] += f.Bytes
	}
	if bytes[0] <= bytes[40] {
		t.Error("top entry should carry more bytes than rank-40 entry")
	}
	// Sorted by start time.
	for i := 1; i < len(specs); i++ {
		if specs[i].Start < specs[i-1].Start {
			t.Fatal("specs not sorted by start time")
		}
	}
}

func TestDriverRunsFlows(t *testing.T) {
	s := sim.New(1)
	src := netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	sw := netsim.NewSwitch(s, "sw", 2)
	netsim.Connect(s, src, 0, sw, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 1e9})
	netsim.Connect(s, sw, 1, dst, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 1e9})
	// Forward: entries → port 1. Reverse: src host's address → port 0.
	sw.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	sw.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})

	d := NewDriver(s, src, dst, tcp.Config{})
	rng := rand.New(rand.NewSource(4))
	specs := SteadyEntry(7, 1e6, 20, 2*sim.Second, rng)
	d.Schedule(specs)
	s.Run(20 * sim.Second)

	if d.Started() != uint64(len(specs)) {
		t.Errorf("started %d flows, want %d", d.Started(), len(specs))
	}
	if d.Completed() != len(specs) {
		t.Errorf("completed %d of %d flows", d.Completed(), len(specs))
	}
}

func TestUDPSourceRate(t *testing.T) {
	s := sim.New(1)
	h := netsim.NewHost(s, "h")
	peer := netsim.NewHost(s, "peer")
	netsim.Connect(s, h, 0, peer, 0, netsim.LinkConfig{Delay: 0, RateBps: 1e9})
	var got int
	peer.Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		if p.Proto != netsim.ProtoUDP || p.Entry != 3 {
			t.Errorf("unexpected packet %v", p)
		}
		got++
	})
	u := NewUDPSource(s, h, 99, 3, netsim.EntryAddr(3, 1), 1.2e6, 1500, 1*sim.Second)
	u.Start()
	s.Run(2 * sim.Second)
	// 1.2 Mbps / (1500*8 b) = 100 pps for 1 s.
	if got < 95 || got > 105 {
		t.Errorf("received %d packets, want ≈100", got)
	}
}

func TestSynthesizeMatchesTargets(t *testing.T) {
	cfg := TraceConfig{
		Name: "test", BitRateBps: 50e6, PacketRate: 6000, FlowRate: 250,
		Prefixes: 2000, Duration: 30 * sim.Second, Seed: 5,
	}
	tr := Synthesize(cfg)
	st := tr.Stats()
	if st.BitRateBps < 0.5*cfg.BitRateBps || st.BitRateBps > 1.5*cfg.BitRateBps {
		t.Errorf("bit rate = %.2e, want ≈%.2e", st.BitRateBps, cfg.BitRateBps)
	}
	if st.FlowRate < 0.5*cfg.FlowRate || st.FlowRate > 1.5*cfg.FlowRate {
		t.Errorf("flow rate = %.0f, want ≈%.0f", st.FlowRate, cfg.FlowRate)
	}
	if st.ActivePfx < 100 {
		t.Errorf("only %d active prefixes", st.ActivePfx)
	}
	// Heavy tail: historical top-500 prefixes must dominate the bytes, as
	// in real traces (the paper's top 10K prefixes carry ≥95%).
	if st.Top500Bytes < 0.3 {
		t.Errorf("top-500 byte share = %.2f, want heavy-tailed (>0.3)", st.Top500Bytes)
	}
}

func TestSynthesizeScaleDown(t *testing.T) {
	cfgs := StandardTraces(1000)
	if len(cfgs) != 4 {
		t.Fatalf("want 4 standard traces, got %d", len(cfgs))
	}
	tr := Synthesize(cfgs[0])
	st := tr.Stats()
	// Scaled by 1000: 6.25 Gbps → ≈6.25 Mbps.
	if st.BitRateBps > 20e6 {
		t.Errorf("scaled bit rate = %.2e, want ≈6e6", st.BitRateBps)
	}
	if len(tr.Specs) == 0 {
		t.Fatal("scaled trace has no flows")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := TraceConfig{BitRateBps: 10e6, PacketRate: 1000, FlowRate: 100,
		Prefixes: 500, Duration: 10 * sim.Second, Seed: 9}
	a, b := Synthesize(cfg), Synthesize(cfg)
	if len(a.Specs) != len(b.Specs) {
		t.Fatalf("non-deterministic flow counts: %d vs %d", len(a.Specs), len(b.Specs))
	}
	for i := range a.Specs {
		if a.Specs[i] != b.Specs[i] {
			t.Fatalf("spec %d differs", i)
		}
	}
}

func TestSliceTopOrdering(t *testing.T) {
	cfg := TraceConfig{BitRateBps: 10e6, PacketRate: 1000, FlowRate: 200,
		Prefixes: 300, Duration: 10 * sim.Second, Seed: 10}
	tr := Synthesize(cfg)
	top := tr.SliceTop(20)
	if len(top) != 20 {
		t.Fatalf("got %d top prefixes", len(top))
	}
	bytes := make(map[netsim.EntryID]int64)
	for _, f := range tr.Specs {
		bytes[f.Entry] += f.Bytes
	}
	for i := 1; i < len(top); i++ {
		if bytes[top[i]] > bytes[top[i-1]] {
			t.Fatal("SliceTop not in descending byte order")
		}
	}
}

func TestSliceRankingDiffersFromHistorical(t *testing.T) {
	// §5.2: the slice's top prefixes do not generally coincide with the
	// historical top (which drives dedicated-counter allocation).
	cfg := TraceConfig{BitRateBps: 10e6, PacketRate: 1000, FlowRate: 500,
		Prefixes: 1000, Duration: 10 * sim.Second, Seed: 11}
	tr := Synthesize(cfg)
	top := tr.SliceTop(100)
	outside := 0
	for _, e := range top {
		if int(e) >= 100 {
			outside++
		}
	}
	if outside == 0 {
		t.Error("slice top-100 identical to historical top-100; jitter ineffective")
	}
}

func BenchmarkSynthesizeTrace(b *testing.B) {
	cfg := StandardTraces(100)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Synthesize(cfg)
	}
}
