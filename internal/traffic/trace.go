package traffic

import (
	"math"
	"math/rand"
	"sort"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// TraceConfig describes a CAIDA-like trace to synthesize. The four standard
// configurations returned by StandardTraces reproduce the aggregate
// statistics the paper reports in Table 5 for its evaluation traces.
type TraceConfig struct {
	Name       string
	BitRateBps float64 // aggregate bit rate
	PacketRate float64 // aggregate packets/s (fixes the mean packet size)
	FlowRate   float64 // aggregate flow arrivals/s
	Prefixes   int     // number of /24 prefixes carrying traffic
	Duration   sim.Time
	Zipf       float64 // per-prefix byte-share skew exponent (default 1.05)
	Seed       int64

	// Scale divides all three rates and the prefix count, so tests can run
	// a faithful miniature of a trace. 0 or 1 means full scale.
	Scale float64
}

func (c TraceConfig) scaled() TraceConfig {
	if c.Scale > 1 {
		c.BitRateBps /= c.Scale
		c.PacketRate /= c.Scale
		c.FlowRate /= c.Scale
		c.Prefixes = int(float64(c.Prefixes)/c.Scale) + 1
	}
	if c.Zipf == 0 {
		c.Zipf = 1.05
	}
	return c
}

// Trace is a synthesized workload slice.
type Trace struct {
	Config TraceConfig

	// HistoricalShare is the long-term byte share per prefix, rank order
	// (index = rank). Dedicated-counter allocation uses this, mimicking
	// the paper's allocation "based on historical data".
	HistoricalShare []float64

	// SliceShare is the byte share during the synthesized slice: the
	// historical share with per-prefix jitter, so the top prefixes of the
	// slice "do not generally coincide" with the historical top (§5.2).
	SliceShare []float64

	Specs []FlowSpec
}

// Synthesize builds a trace slice from cfg.
func Synthesize(cfg TraceConfig) *Trace {
	cfg = cfg.scaled()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Config: cfg}
	tr.HistoricalShare = ZipfShares(cfg.Prefixes, cfg.Zipf)

	// Jitter the slice shares log-normally and renormalize.
	tr.SliceShare = make([]float64, cfg.Prefixes)
	var sum float64
	for i, s := range tr.HistoricalShare {
		j := s * math.Exp(rng.NormFloat64()*0.7)
		tr.SliceShare[i] = j
		sum += j
	}
	for i := range tr.SliceShare {
		tr.SliceShare[i] /= sum
	}

	meanFlowBytes := cfg.BitRateBps / 8 / cfg.FlowRate
	// Segment size matched to the trace's mean packet size so the packet
	// rate tracks Table 5, not just the bit rate. Real traces mix ACK-
	// sized and MTU-sized packets; a per-flow size drawn around the mean
	// reproduces the aggregate rate with per-flow realism.
	meanPkt := 1460.0
	if cfg.PacketRate > 0 {
		meanPkt = cfg.BitRateBps / 8 / cfg.PacketRate
	}
	drawMSS := func() int {
		mss := int(meanPkt * (0.5 + rng.Float64())) // uniform [0.5, 1.5)×mean
		if mss < 120 {
			mss = 120
		}
		if mss > 1460 {
			mss = 1460
		}
		return mss
	}
	for i, share := range tr.SliceShare {
		prefixBps := cfg.BitRateBps * share
		fps := cfg.FlowRate * share
		// Sporadic prefixes: expected arrivals over the slice may be <1;
		// draw the count so the tail stays populated probabilistically.
		expected := fps * cfg.Duration.Seconds()
		n := int(expected)
		if rng.Float64() < expected-float64(n) {
			n++
		}
		if n == 0 {
			continue
		}
		bytesPerFlow := int64(prefixBps * cfg.Duration.Seconds() / 8 / float64(n))
		if bytesPerFlow < 40 {
			bytesPerFlow = 40
		}
		// Cap single flows at ~16× the mean so one elephant cannot absorb
		// a prefix's entire share in one burst.
		if cap := int64(16 * meanFlowBytes); bytesPerFlow > cap && cap > 40 {
			bytesPerFlow = cap
		}
		for k := 0; k < n; k++ {
			start := sim.Time(rng.Int63n(int64(cfg.Duration)))
			rate := float64(bytesPerFlow) * 8 // ≈1 s duration pacing
			tr.Specs = append(tr.Specs, FlowSpec{
				Entry: netsim.EntryID(i), Start: start,
				Bytes: bytesPerFlow, RateBps: rate, MSS: drawMSS(),
			})
		}
	}
	sort.Slice(tr.Specs, func(a, b int) bool { return tr.Specs[a].Start < tr.Specs[b].Start })
	return tr
}

// TraceStats summarizes a synthesized trace (Table 5 columns).
type TraceStats struct {
	BitRateBps  float64
	PacketRate  float64 // from per-flow segment sizes
	FlowRate    float64
	TotalBytes  int64
	TotalFlows  int
	ActivePfx   int     // prefixes with at least one flow in the slice
	Top500Bytes float64 // share of bytes in the 500 historically top prefixes
}

// Stats computes the trace's aggregate statistics.
func (tr *Trace) Stats() TraceStats {
	var st TraceStats
	secs := tr.Config.Duration.Seconds()
	active := make(map[netsim.EntryID]bool)
	var top500 int64
	for _, f := range tr.Specs {
		st.TotalBytes += f.Bytes
		st.TotalFlows++
		mss := f.MSS
		if mss == 0 {
			mss = 1460
		}
		st.PacketRate += math.Ceil(float64(f.Bytes) / float64(mss))
		active[f.Entry] = true
		if int(f.Entry) < 500 {
			top500 += f.Bytes
		}
	}
	st.BitRateBps = float64(st.TotalBytes) * 8 / secs
	st.PacketRate /= secs
	st.FlowRate = float64(st.TotalFlows) / secs
	st.ActivePfx = len(active)
	if st.TotalBytes > 0 {
		st.Top500Bytes = float64(top500) / float64(st.TotalBytes)
	}
	return st
}

// SliceTop returns the n prefixes carrying the most bytes in the slice, in
// descending byte order.
func (tr *Trace) SliceTop(n int) []netsim.EntryID {
	type pv struct {
		e netsim.EntryID
		b int64
	}
	bytes := make(map[netsim.EntryID]int64)
	for _, f := range tr.Specs {
		bytes[f.Entry] += f.Bytes
	}
	all := make([]pv, 0, len(bytes))
	for e, b := range bytes {
		all = append(all, pv{e, b})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].b != all[j].b {
			return all[i].b > all[j].b
		}
		return all[i].e < all[j].e
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]netsim.EntryID, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].e
	}
	return out
}

// StandardTraces returns synthesizer configurations matching the four CAIDA
// traces of Table 5. Durations are the 30-second slices §5.2 replays rather
// than the full hour.
func StandardTraces(scale float64) []TraceConfig {
	mk := func(name string, gbps, kpps, kfps float64, prefixes int, seed int64) TraceConfig {
		return TraceConfig{
			Name: name, BitRateBps: gbps * 1e9, PacketRate: kpps * 1e3,
			FlowRate: kfps * 1e3, Prefixes: prefixes,
			Duration: 30 * sim.Second, Seed: seed, Scale: scale,
		}
	}
	return []TraceConfig{
		mk("equinix-chicago.dirB-2014", 6.25, 759.1, 28.3, 250_000, 101),
		mk("equinix-nyc.dirA-2018", 3.86, 557.0, 26.4, 230_000, 102),
		mk("equinix-nyc.dirB-2018", 5.79, 2030.0, 104.5, 280_000, 103),
		mk("equinix-nyc.dirB-2019", 4.72, 1560.0, 90.7, 260_000, 104),
	}
}
