package traffic

import (
	"reflect"
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

func churnCfg(seed int64) ChurnConfig {
	return ChurnConfig{
		Entries:       48,
		AggregateBps:  20e6,
		ShiftInterval: 2 * sim.Second,
		Epochs:        4,
		ShiftCount:    4,
		Seed:          seed,
	}
}

func TestChurnDeterministicPerSeed(t *testing.T) {
	a, b := NewChurnSchedule(churnCfg(7)), NewChurnSchedule(churnCfg(7))
	for e := 0; e < a.Epochs(); e++ {
		if !reflect.DeepEqual(a.Ranks(e), b.Ranks(e)) {
			t.Fatalf("epoch %d ranks differ for the same seed", e)
		}
		if !reflect.DeepEqual(a.NewlyHot(e), b.NewlyHot(e)) {
			t.Fatalf("epoch %d newly-hot sets differ for the same seed", e)
		}
	}
	c := NewChurnSchedule(churnCfg(8))
	same := true
	for e := 1; e < a.Epochs(); e++ {
		if !reflect.DeepEqual(a.NewlyHot(e), c.NewlyHot(e)) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical shift schedules")
	}
}

func TestChurnNewlyHotIsGenuinelyNew(t *testing.T) {
	cs := NewChurnSchedule(churnCfg(7))
	if len(cs.NewlyHot(0)) != 0 {
		t.Fatalf("epoch 0 has newly-hot entries: %v", cs.NewlyHot(0))
	}
	head := cs.Config().HotRanks
	everHot := make(map[netsim.EntryID]bool)
	for _, entry := range cs.Ranks(0)[:head] {
		everHot[entry] = true
	}
	for e := 1; e < cs.Epochs(); e++ {
		fresh := cs.NewlyHot(e)
		if len(fresh) != cs.Config().ShiftCount {
			t.Fatalf("epoch %d promoted %d entries, want %d", e, len(fresh), cs.Config().ShiftCount)
		}
		for i, entry := range fresh {
			if everHot[entry] {
				t.Fatalf("epoch %d re-promoted a previously hot entry %d", e, entry)
			}
			// The fresh batch occupies the top ranks, in order.
			if cs.Ranks(e)[i] != entry {
				t.Fatalf("epoch %d rank %d is %d, want newly-hot %d", e, i, cs.Ranks(e)[i], entry)
			}
		}
		for _, entry := range cs.Ranks(e)[:head] {
			everHot[entry] = true
		}
	}
}

func TestChurnRates(t *testing.T) {
	cs := NewChurnSchedule(churnCfg(7))
	for e := 0; e < cs.Epochs(); e++ {
		// Rank 0 carries the largest Zipf share; the emitted aggregate is
		// the configured load minus only the sub-threshold tail.
		top := cs.Ranks(e)[0]
		if cs.Rate(e, top) <= cs.Rate(e, cs.Ranks(e)[1]) {
			t.Fatalf("epoch %d: rank 0 is not the heaviest", e)
		}
		emitted := cs.EmittedBps(e)
		if emitted < 0.9*cs.Config().AggregateBps || emitted > cs.Config().AggregateBps {
			t.Fatalf("epoch %d emits %.0f bps of %.0f configured", e, emitted, cs.Config().AggregateBps)
		}
	}
	if cs.Rate(0, netsim.EntryID(9999)) != 0 {
		t.Fatal("unknown entry has a rate")
	}
}

// TestChurnLaunch drives the schedule through a real host and checks the
// measured aggregate of one epoch against the configured load.
func TestChurnLaunch(t *testing.T) {
	s := sim.New(1)
	src := netsim.NewHost(s, "src")
	sink := netsim.NewHost(s, "sink")
	netsim.Connect(s, src, 0, sink, 0,
		netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 10e9})
	var bytes int64
	sink.Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		bytes += int64(p.Size)
	})

	cfg := churnCfg(7)
	cfg.ShiftInterval = sim.Second
	cfg.Epochs = 2
	cs := NewChurnSchedule(cfg)
	if n := cs.Launch(s, src); n == 0 {
		t.Fatal("no sources scheduled")
	}
	s.Run(cs.EpochStart(1)) // first epoch only
	got := float64(bytes) * 8
	want := cs.EmittedBps(0)
	if got < 0.85*want || got > 1.1*want {
		t.Fatalf("epoch 0 delivered %.0f bps, want ≈%.0f", got, want)
	}

	// The second epoch's newly-hot entries start flowing only after the
	// boundary.
	fresh := cs.NewlyHot(1)[0]
	if cs.Rate(1, fresh) <= 0 {
		t.Fatalf("newly-hot entry %d not emitted in epoch 1", fresh)
	}
	var freshBytes int64
	sink.Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		if p.Entry == fresh {
			freshBytes += int64(p.Size)
		}
	})
	s.Run(cs.Duration())
	if freshBytes == 0 {
		t.Fatalf("newly-hot entry %d never arrived in epoch 1", fresh)
	}
}
