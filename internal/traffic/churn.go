package traffic

// Churning heavy-hitter workload: a Zipf-popular entry set whose head
// rotates on a fixed schedule. Every epoch a batch of never-before-hot
// entries jumps from the cold tail to the top ranks, which is exactly the
// workload dynamic dedicated-counter allocation exists for — a static
// top-k chosen at deploy time goes stale one epoch later.

import (
	"math/rand"
	"sort"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// ChurnConfig parameterizes a churning workload.
type ChurnConfig struct {
	// Entries is the size of the entry set (IDs 0..Entries-1).
	Entries int

	// AggregateBps is the total offered load, split across the entry set
	// by a Zipf distribution with exponent ZipfS (default 1.1).
	AggregateBps float64
	ZipfS        float64

	// ShiftInterval is the epoch length; Epochs is how many epochs the
	// schedule covers. At every epoch boundary after the first,
	// ShiftCount never-before-hot entries (default 4) move from the cold
	// tail to the top ranks.
	ShiftInterval sim.Time
	Epochs        int
	ShiftCount    int

	// HotRanks defines the "hot head": entries that ever ranked within
	// the top HotRanks are excluded from later shift batches, so every
	// shifted-in entry is genuinely new to the head. Defaults to
	// ShiftCount; experiments comparing against a static top-k should set
	// it to k.
	HotRanks int

	// MinEntryBps drops entries whose epoch rate falls below it (default
	// 10 kbps): the deep tail would otherwise cost thousands of sources
	// without moving any result.
	MinEntryBps float64

	// PktSize is the UDP packet size (default 1000 B).
	PktSize int

	// Seed drives the rank-shift schedule. Same seed, same schedule.
	Seed int64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.ShiftCount == 0 {
		c.ShiftCount = 4
	}
	if c.HotRanks == 0 {
		c.HotRanks = c.ShiftCount
	}
	if c.MinEntryBps == 0 {
		c.MinEntryBps = 10e3
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	return c
}

// ChurnSchedule is a materialized churning workload: per-epoch popularity
// rankings plus the batch of entries that newly became hot at each epoch.
type ChurnSchedule struct {
	cfg    ChurnConfig
	shares []float64

	// ranks[e][r] is the entry at popularity rank r during epoch e.
	ranks [][]netsim.EntryID

	// newlyHot[e] lists the entries promoted into the head at epoch e's
	// start (empty for epoch 0), in promotion order.
	newlyHot [][]netsim.EntryID

	// rank[e] inverts ranks[e]: entry → rank.
	rank []map[netsim.EntryID]int
}

// NewChurnSchedule materializes the rank-shift schedule. The generator
// owns its rand.Rand, so equal configs yield equal schedules.
func NewChurnSchedule(cfg ChurnConfig) *ChurnSchedule {
	cfg = cfg.withDefaults()
	cs := &ChurnSchedule{cfg: cfg, shares: ZipfShares(cfg.Entries, cfg.ZipfS)}
	rng := rand.New(rand.NewSource(cfg.Seed))

	perm := make([]netsim.EntryID, cfg.Entries)
	for i := range perm {
		perm[i] = netsim.EntryID(i)
	}
	everHot := make(map[netsim.EntryID]bool)
	head := cfg.HotRanks
	if head > cfg.Entries {
		head = cfg.Entries
	}
	for e := 0; e < cfg.Epochs; e++ {
		var fresh []netsim.EntryID
		if e > 0 {
			// Candidates: cold-tail entries that were never in the head.
			var cold []netsim.EntryID
			for _, entry := range perm[head:] {
				if !everHot[entry] {
					cold = append(cold, entry)
				}
			}
			for i := 0; i < cfg.ShiftCount && len(cold) > 0; i++ {
				j := rng.Intn(len(cold))
				fresh = append(fresh, cold[j])
				cold = append(cold[:j], cold[j+1:]...)
			}
			// The fresh batch takes the top ranks; everyone else shifts
			// down preserving relative order.
			next := make([]netsim.EntryID, 0, cfg.Entries)
			next = append(next, fresh...)
			promoted := make(map[netsim.EntryID]bool, len(fresh))
			for _, entry := range fresh {
				promoted[entry] = true
			}
			for _, entry := range perm {
				if !promoted[entry] {
					next = append(next, entry)
				}
			}
			perm = next
		}
		for _, entry := range perm[:head] {
			everHot[entry] = true
		}
		epochRanks := append([]netsim.EntryID(nil), perm...)
		cs.ranks = append(cs.ranks, epochRanks)
		cs.newlyHot = append(cs.newlyHot, fresh)
		inv := make(map[netsim.EntryID]int, cfg.Entries)
		for r, entry := range epochRanks {
			inv[entry] = r
		}
		cs.rank = append(cs.rank, inv)
	}
	return cs
}

// Config returns the schedule's effective (defaulted) configuration.
func (cs *ChurnSchedule) Config() ChurnConfig { return cs.cfg }

// Epochs returns the number of materialized epochs.
func (cs *ChurnSchedule) Epochs() int { return len(cs.ranks) }

// EpochStart returns when epoch e begins.
func (cs *ChurnSchedule) EpochStart(e int) sim.Time {
	return sim.Time(e) * cs.cfg.ShiftInterval
}

// Duration returns the schedule's total length.
func (cs *ChurnSchedule) Duration() sim.Time {
	return sim.Time(cs.Epochs()) * cs.cfg.ShiftInterval
}

// Ranks returns epoch e's popularity ranking (rank 0 hottest). The slice
// is owned by the schedule; do not mutate.
func (cs *ChurnSchedule) Ranks(e int) []netsim.EntryID { return cs.ranks[e] }

// NewlyHot lists the entries that jumped into the head at epoch e's start
// (empty for epoch 0).
func (cs *ChurnSchedule) NewlyHot(e int) []netsim.EntryID { return cs.newlyHot[e] }

// Rate returns entry's offered load during epoch e (0 when it falls under
// MinEntryBps and is not emitted).
func (cs *ChurnSchedule) Rate(e int, entry netsim.EntryID) float64 {
	r, ok := cs.rank[e][entry]
	if !ok {
		return 0
	}
	rate := cs.cfg.AggregateBps * cs.shares[r]
	if rate < cs.cfg.MinEntryBps {
		return 0
	}
	return rate
}

// EmittedBps returns the aggregate rate actually emitted during epoch e
// (AggregateBps minus the sub-MinEntryBps tail).
func (cs *ChurnSchedule) EmittedBps(e int) float64 {
	var total float64
	for _, entry := range cs.ranks[e] {
		total += cs.Rate(e, entry)
	}
	return total
}

// Top returns epoch e's k hottest entries, sorted ascending (the natural
// HighPriority form for a static-allocation baseline).
func (cs *ChurnSchedule) Top(e, k int) []netsim.EntryID {
	if k > len(cs.ranks[e]) {
		k = len(cs.ranks[e])
	}
	out := append([]netsim.EntryID(nil), cs.ranks[e][:k]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Launch schedules the whole workload as per-epoch CBR UDP sources from
// host: each emitted entry gets one source per epoch, running from the
// epoch's start to its end. It returns the number of sources scheduled.
func (cs *ChurnSchedule) Launch(s *sim.Sim, host *netsim.Host) int {
	n := 0
	for e := 0; e < cs.Epochs(); e++ {
		start, stop := cs.EpochStart(e), cs.EpochStart(e+1)
		for _, entry := range cs.ranks[e] {
			rate := cs.Rate(e, entry)
			if rate <= 0 {
				continue
			}
			src := NewUDPSource(s, host, netsim.FlowID(n+1), entry,
				netsim.EntryAddr(entry, 1), rate, cs.cfg.PktSize, stop)
			s.ScheduleAt(start, src.Start)
			n++
		}
	}
	return n
}
