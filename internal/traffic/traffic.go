// Package traffic generates the workloads of the FANcY evaluation:
// fixed-rate synthetic entries (the Figure 7/8/9 grid), Zipf-distributed
// entry popularity (the §5.1.3 uniform-failure experiments), CAIDA-like
// synthesized traces (Table 3/5), and constant-bit-rate UDP sources (the
// Figure 10 case study).
//
// The paper replays real CAIDA traces; those traces are not redistributable,
// so this package synthesizes workloads that reproduce their published
// aggregate statistics (Table 5: bit rate, packet rate, flow rate) and the
// heavy-tailed per-prefix traffic distribution that drives FANcY's accuracy
// results. See DESIGN.md §1 for the substitution rationale.
package traffic

import (
	"math"
	"math/rand"
	"sort"

	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/tcp"
)

// FlowSpec describes one flow to be injected into a simulation.
type FlowSpec struct {
	Entry   netsim.EntryID
	Start   sim.Time
	Bytes   int64
	RateBps float64 // pacing rate; 0 = bulk
	MSS     int     // per-flow segment size; 0 = the TCP default (1460)
}

// SteadyEntry builds the flow arrivals for one entry of the synthetic grid:
// flows arrive at flowsPerSec for the given duration, each carrying
// rateBps/flowsPerSec of throughput for ≈1 second (the paper's flow
// duration), so the entry's aggregate rate is rateBps.
func SteadyEntry(entry netsim.EntryID, rateBps, flowsPerSec float64, duration sim.Time, rng *rand.Rand) []FlowSpec {
	if flowsPerSec <= 0 || rateBps <= 0 || duration <= 0 {
		return nil
	}
	perFlowRate := rateBps / flowsPerSec
	flowBytes := int64(perFlowRate / 8) // 1 second worth
	if flowBytes < 40 {
		flowBytes = 40
	}
	interval := sim.Time(float64(sim.Second) / flowsPerSec)
	var specs []FlowSpec
	// Random phase so repetitions differ, then deterministic spacing with
	// small jitter, approximating a stationary arrival process.
	start := sim.Time(rng.Int63n(int64(interval) + 1))
	for at := start; at < duration; at += interval {
		jitter := sim.Time(rng.Int63n(int64(interval)/2+1)) - interval/4
		t := at + jitter
		if t < 0 {
			t = 0
		}
		specs = append(specs, FlowSpec{Entry: entry, Start: t, Bytes: flowBytes, RateBps: perFlowRate})
	}
	return specs
}

// ZipfShares returns n traffic shares following a Zipf distribution with
// exponent s (shares sum to 1, rank 0 largest). The paper cites Zipf's law
// for per-prefix traffic skew [38].
func ZipfShares(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	shares := make([]float64, n)
	var sum float64
	for i := range shares {
		shares[i] = 1 / math.Pow(float64(i+1), s)
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// ZipfWorkload spreads aggregateBps across numEntries entries with Zipf
// exponent s, generating flow arrivals for each entry proportional to its
// share. Entries with less than minEntryBps are merged into flows of the
// smallest viable rate at proportionally lower arrival frequency.
func ZipfWorkload(numEntries int, aggregateBps, flowsPerSec float64, s float64,
	duration sim.Time, rng *rand.Rand) []FlowSpec {
	shares := ZipfShares(numEntries, s)
	var specs []FlowSpec
	for i, share := range shares {
		rate := aggregateBps * share
		fps := flowsPerSec * share
		if fps < 0.2 {
			fps = 0.2 // at least a flow every 5 seconds
		}
		specs = append(specs, SteadyEntry(netsim.EntryID(i), rate, fps, duration, rng)...)
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].Start < specs[b].Start })
	return specs
}

// Driver injects FlowSpecs into a running simulation between two hosts and
// tracks per-entry delivery statistics.
type Driver struct {
	s        *sim.Sim
	src, dst *netsim.Host
	nextFlow netsim.FlowID
	cfg      tcp.Config

	Senders []*tcp.Sender

	// ByEntry aggregates sender stats per entry, filled lazily by Stats.
	started uint64
}

// NewDriver builds a driver. The tcp.Config applies to every generated flow
// (zero value = defaults: 1460 MSS, 200 ms RTO).
func NewDriver(s *sim.Sim, src, dst *netsim.Host, cfg tcp.Config) *Driver {
	return &Driver{s: s, src: src, dst: dst, cfg: cfg}
}

// Schedule arranges for every spec's flow to start at its Start time.
func (d *Driver) Schedule(specs []FlowSpec) {
	for _, spec := range specs {
		spec := spec
		d.s.ScheduleAt(spec.Start, func() { d.launch(spec) })
	}
}

func (d *Driver) launch(spec FlowSpec) {
	flow := d.nextFlow
	d.nextFlow++
	cfg := d.cfg
	cfg.RateBps = spec.RateBps
	if spec.MSS > 0 {
		cfg.MSS = spec.MSS
	}
	snd := tcp.NewSender(d.s, d.src, d.dst, flow, spec.Entry,
		netsim.IPv4(172, 16, 0, 1), netsim.EntryAddr(spec.Entry, 1),
		spec.Bytes, cfg)
	d.Senders = append(d.Senders, snd)
	d.started++
	snd.Start()
}

// Started reports the number of flows launched so far.
func (d *Driver) Started() uint64 { return d.started }

// Completed reports the number of finished flows.
func (d *Driver) Completed() int {
	n := 0
	for _, snd := range d.Senders {
		if snd.Done() {
			n++
		}
	}
	return n
}

// UDPSource emits constant-bit-rate UDP packets for one entry, as in the
// Figure 10 testbed (50 Mbps UDP alongside TCP).
type UDPSource struct {
	s      *sim.Sim
	host   *netsim.Host
	flow   netsim.FlowID
	entry  netsim.EntryID
	dst    uint32
	size   int
	gap    sim.Time
	stop   sim.Time
	tickFn func() // bound once: the tick→tick reschedule must not allocate

	// Pool, when set, supplies the emitted packets. Pair it with a pooled
	// sink (Host.SetPool / LinkEnd.SetPool) so dead packets flow back.
	Pool *netsim.PacketPool

	Sent uint64
}

// NewUDPSource creates a CBR source sending pktSize-byte packets at rateBps
// until stop (0 = forever).
func NewUDPSource(s *sim.Sim, host *netsim.Host, flow netsim.FlowID, entry netsim.EntryID,
	dst uint32, rateBps float64, pktSize int, stop sim.Time) *UDPSource {
	u := &UDPSource{s: s, host: host, flow: flow, entry: entry, dst: dst, size: pktSize, stop: stop}
	u.gap = sim.Time(float64(pktSize*8) / rateBps * float64(sim.Second))
	if u.gap <= 0 {
		u.gap = sim.Microsecond
	}
	u.tickFn = u.tick
	return u
}

// Start begins emission.
func (u *UDPSource) Start() { u.tick() }

func (u *UDPSource) tick() {
	if u.stop > 0 && u.s.Now() >= u.stop {
		return
	}
	var pkt *netsim.Packet
	if u.Pool != nil {
		pkt = u.Pool.Get()
		pkt.Flow, pkt.Entry, pkt.Dst = u.flow, u.entry, u.dst
		pkt.Proto, pkt.Size = netsim.ProtoUDP, u.size
	} else {
		pkt = &netsim.Packet{
			Flow: u.flow, Entry: u.entry, Dst: u.dst,
			Proto: netsim.ProtoUDP, Size: u.size,
		}
	}
	u.host.Send(pkt)
	u.Sent++
	u.s.After(u.gap, u.tickFn)
}
