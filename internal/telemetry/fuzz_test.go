package telemetry

import (
	"strings"
	"testing"
)

// FuzzGetPath throws arbitrary paths at Server.Get: it must never panic,
// must answer every path Paths() advertises, and must reject everything
// else with an error rather than a zero value masquerading as telemetry.
// The corpus seeds every advertised path plus mutations that target the
// parser's joints (slot indices, prefixes, separators).
func FuzzGetPath(f *testing.F) {
	b := newFuzzBed(f)
	valid := make(map[string]bool)
	for _, p := range b.srv.Paths() {
		valid[p] = true
		f.Add(p)
		// Mutations around each advertised path's structure.
		f.Add(p + "/")
		f.Add("/" + p)
		f.Add(strings.ToUpper(p))
		f.Add(strings.TrimPrefix(p, "/fancy"))
	}
	f.Add("")
	f.Add("/")
	f.Add("//")
	f.Add("/fancy")
	f.Add("/fancy/port/1/dedicated/0")
	f.Add("/fancy/port/1/dedicated/-1")
	f.Add("/fancy/port/1/dedicated/99999999999999999999")
	f.Add("/fancy/port/notanumber/state")
	f.Add("/fancy/port/1/tree/0/0")
	f.Add("/fancy/port/1/tree/x/y")
	f.Add("/fancy/stats/")
	f.Add("/fancy/stats/unknown")
	f.Add(strings.Repeat("/fancy", 100))
	f.Add("/fancy/port/+1/state")
	f.Add("/fancy/port/0x1/state")

	f.Fuzz(func(t *testing.T, path string) {
		v, err := b.srv.Get(path) // must not panic, whatever the input
		if valid[path] && err != nil {
			t.Fatalf("advertised path %q rejected: %v", path, err)
		}
		if err == nil && v == nil {
			t.Fatalf("path %q accepted but returned nil", path)
		}
	})
}

// newFuzzBed is newBed without *testing.T (fuzzing passes *testing.F).
func newFuzzBed(f *testing.F) *bed {
	f.Helper()
	b, err := buildBed()
	if err != nil {
		f.Fatal(err)
	}
	return b
}
