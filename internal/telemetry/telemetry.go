// Package telemetry exposes a FANcY detector's state through a
// gNMI-inspired path-based interface: Get for point reads, Subscribe for
// ON_CHANGE streams of detection updates and SAMPLE streams of counters.
//
// The paper's Figure 1 frames FANcY as a component other applications
// drive: operators push monitoring requirements in and consume mismatching
// entries out. This package is that interface for the Go implementation —
// the same role gNMI plays for production switch telemetry. Paths:
//
//	/fancy/ports/<port>/flags/dedicated/<slot>   bool, dedicated flag bit
//	/fancy/ports/<port>/flags/count              int, flagged slots
//	/fancy/ports/<port>/bloom/inserted           int, flagged hash paths
//	/fancy/ports/<port>/sessions/completed       int
//	/fancy/control/messages                      int
//	/fancy/control/bytes                         int
//	/fancy/layout                                string
//	/fancy/stats/ctl-corrupted                   int, corrupted ctl msgs dropped
//	/fancy/stats/retransmits                     int, ctl retransmission firings
//	/fancy/stats/link-down-events                int
//	/fancy/stats/link-up-events                  int
//	/fancy/stats/restarts                        int, device reboots
//	/fancy/stats/sessions-discarded              int, congestion-guard discards
//	/fancy/stats/epoch                           int, detector generation number
//	/fancy/stats/hh-reports                      int, heavy-hitter digests emitted
//	/fancy/stats/promotions                      int, dynamic-slot promotions
//	/fancy/stats/demotions                       int, dynamic-slot demotions
//	/fancy/ports/<port>/hh/occupied              int, dynamic slots in use
//	/fancy/ports/<port>/hh/capacity              int, dynamic slots provisioned
//
// Components above the detector (the switch agent's counter-allocation
// controller, for one) export their own counters through RegisterStat,
// which mounts them under /fancy/stats/<name>.
//
// Paths are validated at Get/Sample time, so misspellings fail fast.
package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/sim"
)

// Update is one telemetry notification.
type Update struct {
	Time  sim.Time
	Path  string
	Value any
}

// Server serves one detector's state.
type Server struct {
	s   *sim.Sim
	det *fancy.Detector

	ports []int // monitored ports, for iteration

	subs []*subscription

	// extra holds RegisterStat-mounted counters, name → reader.
	extra map[string]func() int

	// Delivered counts updates pushed to subscribers.
	Delivered uint64
}

type subscription struct {
	prefix string
	fn     func(Update)
	timer  *sim.Timer
}

// NewServer builds a telemetry server over det. The monitored ports must
// be passed explicitly (the detector does not expose its port map).
func NewServer(s *sim.Sim, det *fancy.Detector, monitoredPorts ...int) *Server {
	srv := &Server{s: s, det: det, ports: monitoredPorts}
	sort.Ints(srv.ports)
	return srv
}

// AttachEvents chains the server into the detector's OnEvent callback and
// returns the wrapped handler so callers can compose their own:
//
//	det.OnEvent = srv.AttachEvents(myHandler)
func (srv *Server) AttachEvents(next func(fancy.Event)) func(fancy.Event) {
	return func(ev fancy.Event) {
		srv.publishEvent(ev)
		if next != nil {
			next(ev)
		}
	}
}

func (srv *Server) publishEvent(ev fancy.Event) {
	var u Update
	u.Time = ev.Time
	switch ev.Kind {
	case fancy.EventDedicated:
		u.Path = fmt.Sprintf("/fancy/ports/%d/events/dedicated/%d", ev.Port, ev.Entry)
		u.Value = ev.Diff
	case fancy.EventTreeLeaf:
		u.Path = fmt.Sprintf("/fancy/ports/%d/events/tree-leaf", ev.Port)
		u.Value = fmt.Sprint(ev.Path)
	case fancy.EventUniform:
		u.Path = fmt.Sprintf("/fancy/ports/%d/events/uniform", ev.Port)
		u.Value = true
	case fancy.EventLinkDown:
		u.Path = fmt.Sprintf("/fancy/ports/%d/events/link-down", ev.Port)
		u.Value = true
	case fancy.EventTreeZoomStart:
		u.Path = fmt.Sprintf("/fancy/ports/%d/events/zooming", ev.Port)
		u.Value = true
	default:
		return
	}
	srv.push(u)
}

func (srv *Server) push(u Update) {
	for _, sub := range srv.subs {
		if strings.HasPrefix(u.Path, sub.prefix) {
			srv.Delivered++
			sub.fn(u)
		}
	}
}

// Get reads one path.
func (srv *Server) Get(path string) (any, error) {
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(parts) < 2 || parts[0] != "fancy" {
		return nil, fmt.Errorf("telemetry: unknown path %q", path)
	}
	switch parts[1] {
	case "layout":
		return srv.det.Layout.String(), nil
	case "control":
		if len(parts) != 3 {
			return nil, fmt.Errorf("telemetry: unknown path %q", path)
		}
		switch parts[2] {
		case "messages":
			return int(srv.det.CtlMsgsSent), nil
		case "bytes":
			return int(srv.det.CtlBytesSent), nil
		}
		return nil, fmt.Errorf("telemetry: unknown path %q", path)
	case "stats":
		if len(parts) != 3 {
			return nil, fmt.Errorf("telemetry: unknown path %q", path)
		}
		st := srv.det.Stats()
		switch parts[2] {
		case "ctl-corrupted":
			return int(st.CtlCorrupted), nil
		case "retransmits":
			return int(st.Retransmits), nil
		case "link-down-events":
			return int(st.LinkDownEvents), nil
		case "link-up-events":
			return int(st.LinkUpEvents), nil
		case "restarts":
			return int(st.Restarts), nil
		case "sessions-discarded":
			return int(st.SessionsDiscarded), nil
		case "epoch":
			return int(srv.det.Epoch()), nil
		case "hh-reports":
			return int(st.HHReports), nil
		case "promotions":
			return int(st.Promotions), nil
		case "demotions":
			return int(st.Demotions), nil
		}
		if fn, ok := srv.extra[parts[2]]; ok {
			return fn(), nil
		}
		return nil, fmt.Errorf("telemetry: unknown path %q", path)
	case "ports":
		return srv.getPort(parts[2:], path)
	}
	return nil, fmt.Errorf("telemetry: unknown path %q", path)
}

func (srv *Server) getPort(parts []string, full string) (any, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("telemetry: unknown path %q", full)
	}
	port, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("telemetry: bad port in %q", full)
	}
	out := srv.det.Outputs(port)
	if out == nil {
		return nil, fmt.Errorf("telemetry: port %d not monitored", port)
	}
	switch strings.Join(parts[1:], "/") {
	case "flags/count":
		return out.Flags.Count(), nil
	case "bloom/inserted":
		return out.Bloom.Inserted(), nil
	case "sessions/completed":
		return int(srv.det.SessionsCompleted(port)), nil
	case "link/down":
		return srv.det.LinkDown(port), nil
	case "hh/occupied":
		used, _ := srv.det.DynamicOccupancy(port)
		return used, nil
	case "hh/capacity":
		_, capacity := srv.det.DynamicOccupancy(port)
		return capacity, nil
	}
	if len(parts) == 4 && parts[1] == "flags" && parts[2] == "dedicated" {
		slot, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("telemetry: bad slot in %q", full)
		}
		if slot < 0 || slot >= out.Flags.Len() {
			return nil, fmt.Errorf("telemetry: slot %d out of range", slot)
		}
		return out.Flags.Get(slot), nil
	}
	return nil, fmt.Errorf("telemetry: unknown path %q", full)
}

// RegisterStat mounts a component-owned counter at /fancy/stats/<name>,
// read on demand through fn. Registering a name that collides with a
// built-in stat is rejected; re-registering the same name replaces the
// reader (a restarted component re-mounts its counters).
func (srv *Server) RegisterStat(name string, fn func() int) error {
	if name == "" || strings.Contains(name, "/") {
		return fmt.Errorf("telemetry: invalid stat name %q", name)
	}
	if _, err := srv.Get("/fancy/stats/" + name); err == nil {
		if _, ours := srv.extra[name]; !ours {
			return fmt.Errorf("telemetry: stat %q shadows a built-in path", name)
		}
	}
	if srv.extra == nil {
		srv.extra = make(map[string]func() int)
	}
	srv.extra[name] = fn
	return nil
}

// Subscribe delivers ON_CHANGE updates for every event path under prefix.
// It returns a cancel function.
func (srv *Server) Subscribe(prefix string, fn func(Update)) (cancel func()) {
	sub := &subscription{prefix: prefix, fn: fn}
	srv.subs = append(srv.subs, sub)
	return func() { srv.unsubscribe(sub) }
}

// Sample delivers the value at path every interval (gNMI SAMPLE mode).
// Sampling stops when cancel is called or the path becomes invalid.
func (srv *Server) Sample(path string, interval sim.Time, fn func(Update)) (cancel func(), err error) {
	if _, err := srv.Get(path); err != nil {
		return nil, err
	}
	sub := &subscription{prefix: path, fn: fn}
	var tick func()
	tick = func() {
		v, err := srv.Get(path)
		if err != nil {
			return
		}
		srv.Delivered++
		fn(Update{Time: srv.s.Now(), Path: path, Value: v})
		sub.timer = srv.s.Schedule(interval, tick)
	}
	sub.timer = srv.s.Schedule(interval, tick)
	srv.subs = append(srv.subs, sub)
	return func() { srv.unsubscribe(sub) }, nil
}

func (srv *Server) unsubscribe(sub *subscription) {
	sub.timer.Stop()
	for i, s := range srv.subs {
		if s == sub {
			srv.subs = append(srv.subs[:i], srv.subs[i+1:]...)
			return
		}
	}
}

// StatsPaths lists the robustness-counter paths (Detector.Stats plus the
// epoch), the signals fleet correlators and operators read to tell a gray
// link from a lossy control plane, a flapping peer or a rebooted device.
func StatsPaths() []string {
	return []string{
		"/fancy/stats/ctl-corrupted",
		"/fancy/stats/retransmits",
		"/fancy/stats/link-down-events",
		"/fancy/stats/link-up-events",
		"/fancy/stats/restarts",
		"/fancy/stats/sessions-discarded",
		"/fancy/stats/epoch",
		"/fancy/stats/hh-reports",
		"/fancy/stats/promotions",
		"/fancy/stats/demotions",
	}
}

// Paths lists the Get-able paths for the monitored ports, for discovery.
func (srv *Server) Paths() []string {
	paths := []string{"/fancy/layout", "/fancy/control/messages", "/fancy/control/bytes"}
	paths = append(paths, StatsPaths()...)
	extras := make([]string, 0, len(srv.extra))
	for name := range srv.extra {
		extras = append(extras, "/fancy/stats/"+name)
	}
	sort.Strings(extras)
	paths = append(paths, extras...)
	for _, p := range srv.ports {
		paths = append(paths,
			fmt.Sprintf("/fancy/ports/%d/flags/count", p),
			fmt.Sprintf("/fancy/ports/%d/bloom/inserted", p),
			fmt.Sprintf("/fancy/ports/%d/sessions/completed", p),
			fmt.Sprintf("/fancy/ports/%d/link/down", p),
			fmt.Sprintf("/fancy/ports/%d/hh/occupied", p),
			fmt.Sprintf("/fancy/ports/%d/hh/capacity", p),
		)
	}
	return paths
}
