package telemetry

import (
	"strings"
	"testing"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// bed builds the canonical monitored link with a telemetry server on the
// upstream detector.
type bed struct {
	s    *sim.Sim
	src  *netsim.Host
	link *netsim.Link
	det  *fancy.Detector
	srv  *Server
}

func newBed(t *testing.T) *bed {
	t.Helper()
	s := sim.New(1)
	b := &bed{s: s}
	b.src = netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	lc := netsim.LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 10e9}
	netsim.Connect(s, b.src, 0, up, 0, lc)
	b.link = netsim.Connect(s, up, 1, down, 0, lc)
	netsim.Connect(s, down, 1, dst, 0, lc)
	up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	cfg := fancy.Config{
		HighPriority: []netsim.EntryID{10, 11},
		Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
	}
	var err error
	b.det, err = fancy.NewDetector(s, up, cfg)
	if err != nil {
		t.Fatal(err)
	}
	downDet, err := fancy.NewDetector(s, down, cfg)
	if err != nil {
		t.Fatal(err)
	}
	downDet.ListenPort(0)
	b.det.MonitorPort(1)
	b.srv = NewServer(s, b.det, 1)
	b.det.OnEvent = b.srv.AttachEvents(nil)
	return b
}

func (b *bed) traffic(entry netsim.EntryID, stop sim.Time) {
	var tick func()
	tick = func() {
		if b.s.Now() >= stop {
			return
		}
		b.src.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Proto: netsim.ProtoUDP, Size: 1000})
		b.s.Schedule(4*sim.Millisecond, tick)
	}
	b.s.Schedule(0, tick)
}

func TestGetPaths(t *testing.T) {
	b := newBed(t)
	b.traffic(10, 2*sim.Second)
	b.s.Run(2 * sim.Second)

	if v, err := b.srv.Get("/fancy/ports/1/flags/count"); err != nil || v != 0 {
		t.Errorf("flags/count = %v, %v; want 0", v, err)
	}
	if v, err := b.srv.Get("/fancy/ports/1/flags/dedicated/0"); err != nil || v != false {
		t.Errorf("dedicated/0 = %v, %v; want false", v, err)
	}
	if v, err := b.srv.Get("/fancy/ports/1/sessions/completed"); err != nil || v.(int) == 0 {
		t.Errorf("sessions = %v, %v; want > 0", v, err)
	}
	if v, err := b.srv.Get("/fancy/control/messages"); err != nil || v.(int) == 0 {
		t.Errorf("control/messages = %v, %v", v, err)
	}
	if v, err := b.srv.Get("/fancy/layout"); err != nil || !strings.Contains(v.(string), "dedicated=2") {
		t.Errorf("layout = %v, %v", v, err)
	}
}

func TestGetErrors(t *testing.T) {
	b := newBed(t)
	bad := []string{
		"/nope", "/fancy/bogus", "/fancy/ports/9/flags/count",
		"/fancy/ports/1/flags/dedicated/99", "/fancy/ports/x/flags/count",
		"/fancy/control/quux", "/fancy/ports/1/unknown",
	}
	for _, p := range bad {
		if _, err := b.srv.Get(p); err == nil {
			t.Errorf("Get(%q) succeeded", p)
		}
	}
}

func TestSubscribeOnChange(t *testing.T) {
	b := newBed(t)
	var got []Update
	cancel := b.srv.Subscribe("/fancy/ports/1/events/", func(u Update) { got = append(got, u) })

	b.traffic(10, 4*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, sim.Second, 1.0, 10))
	b.s.Run(4 * sim.Second)

	if len(got) == 0 {
		t.Fatal("no updates delivered")
	}
	first := got[0]
	if !strings.HasPrefix(first.Path, "/fancy/ports/1/events/dedicated/10") {
		t.Errorf("first update path = %q", first.Path)
	}
	if first.Time < sim.Second {
		t.Errorf("update before the failure: %v", first.Time)
	}
	// Flag readable through Get after the event.
	if v, _ := b.srv.Get("/fancy/ports/1/flags/dedicated/0"); v != true {
		t.Error("flag not visible through Get after detection")
	}

	// After cancel, no more deliveries.
	n := len(got)
	cancel()
	b.traffic(11, b.s.Now()+2*sim.Second)
	b.s.Run(b.s.Now() + 2*sim.Second)
	if len(got) != n {
		t.Errorf("updates after cancel: %d → %d", n, len(got))
	}
}

func TestSubscribePrefixFiltering(t *testing.T) {
	b := newBed(t)
	var uniform, dedicated int
	b.srv.Subscribe("/fancy/ports/1/events/uniform", func(Update) { uniform++ })
	b.srv.Subscribe("/fancy/ports/1/events/dedicated/", func(Update) { dedicated++ })

	b.traffic(10, 4*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, sim.Second, 1.0, 10))
	b.s.Run(4 * sim.Second)

	if dedicated == 0 {
		t.Error("dedicated subscription got nothing")
	}
	if uniform != 0 {
		t.Errorf("uniform subscription got %d updates for a per-entry failure", uniform)
	}
}

func TestSampleMode(t *testing.T) {
	b := newBed(t)
	var samples []Update
	cancel, err := b.srv.Sample("/fancy/ports/1/sessions/completed", 100*sim.Millisecond,
		func(u Update) { samples = append(samples, u) })
	if err != nil {
		t.Fatal(err)
	}
	b.traffic(10, 1*sim.Second)
	b.s.Run(1 * sim.Second)
	if len(samples) < 8 || len(samples) > 11 {
		t.Fatalf("got %d samples in 1s at 100ms, want ≈10", len(samples))
	}
	// Monotone non-decreasing session counts.
	for i := 1; i < len(samples); i++ {
		if samples[i].Value.(int) < samples[i-1].Value.(int) {
			t.Fatal("session counter went backwards")
		}
	}
	cancel()
	n := len(samples)
	b.s.Run(b.s.Now() + 500*sim.Millisecond)
	if len(samples) != n {
		t.Error("samples delivered after cancel")
	}
}

func TestSampleInvalidPath(t *testing.T) {
	b := newBed(t)
	if _, err := b.srv.Sample("/fancy/bogus", sim.Second, func(Update) {}); err == nil {
		t.Fatal("invalid sample path accepted")
	}
}

func TestPathsDiscovery(t *testing.T) {
	b := newBed(t)
	paths := b.srv.Paths()
	if len(paths) < 5 {
		t.Fatalf("Paths() = %v", paths)
	}
	for _, p := range paths {
		if _, err := b.srv.Get(p); err != nil {
			t.Errorf("discovered path %q not Get-able: %v", p, err)
		}
	}
}

func TestPublishAllEventKinds(t *testing.T) {
	b := newBed(t)
	var paths []string
	b.srv.Subscribe("/fancy/ports/1/events/", func(u Update) { paths = append(paths, u.Path) })

	// Chain a downstream consumer through AttachEvents.
	chained := 0
	b.det.OnEvent = b.srv.AttachEvents(func(fancy.Event) { chained++ })

	for _, ev := range []fancy.Event{
		{Port: 1, Kind: fancy.EventDedicated, Entry: 10, Diff: 3},
		{Port: 1, Kind: fancy.EventTreeZoomStart},
		{Port: 1, Kind: fancy.EventTreeLeaf, Path: []uint16{1, 2, 3}, Diff: 5},
		{Port: 1, Kind: fancy.EventUniform},
		{Port: 1, Kind: fancy.EventLinkDown},
		{Port: 1, Kind: fancy.EventKind(200)}, // unknown kind: no update
	} {
		b.det.OnEvent(ev)
	}
	want := []string{
		"/fancy/ports/1/events/dedicated/10",
		"/fancy/ports/1/events/zooming",
		"/fancy/ports/1/events/tree-leaf",
		"/fancy/ports/1/events/uniform",
		"/fancy/ports/1/events/link-down",
	}
	if len(paths) != len(want) {
		t.Fatalf("published %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("path[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
	if chained != 6 {
		t.Errorf("chained handler saw %d events, want all 6", chained)
	}
}

func TestLinkDownPath(t *testing.T) {
	b := newBed(t)
	if v, err := b.srv.Get("/fancy/ports/1/link/down"); err != nil || v != false {
		t.Errorf("link/down = %v, %v; want false", v, err)
	}
	// Kill everything including control: link-down must show through Get.
	b.link.AB.SetFailure(netsim.FailUniform(3, 0, 1.0))
	b.traffic(10, 2*sim.Second)
	b.s.Run(2 * sim.Second)
	if v, _ := b.srv.Get("/fancy/ports/1/link/down"); v != true {
		t.Error("link/down = false after a total blackhole")
	}
}
