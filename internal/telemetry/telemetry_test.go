package telemetry

import (
	"strings"
	"testing"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// bed builds the canonical monitored link with a telemetry server on the
// upstream detector.
type bed struct {
	s    *sim.Sim
	src  *netsim.Host
	link *netsim.Link
	det  *fancy.Detector
	srv  *Server
}

func newBed(t *testing.T) *bed {
	t.Helper()
	b, err := buildBed()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// buildBed is the harness constructor proper, shared with FuzzGetPath
// (fuzzing hands out *testing.F, not *testing.T).
func buildBed() (*bed, error) {
	s := sim.New(1)
	b := &bed{s: s}
	b.src = netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	lc := netsim.LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 10e9}
	netsim.Connect(s, b.src, 0, up, 0, lc)
	b.link = netsim.Connect(s, up, 1, down, 0, lc)
	netsim.Connect(s, down, 1, dst, 0, lc)
	up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	cfg := fancy.Config{
		HighPriority: []netsim.EntryID{10, 11},
		Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
	}
	var err error
	b.det, err = fancy.NewDetector(s, up, cfg)
	if err != nil {
		return nil, err
	}
	downDet, err := fancy.NewDetector(s, down, cfg)
	if err != nil {
		return nil, err
	}
	downDet.ListenPort(0)
	b.det.MonitorPort(1)
	b.srv = NewServer(s, b.det, 1)
	b.det.OnEvent = b.srv.AttachEvents(nil)
	return b, nil
}

func (b *bed) traffic(entry netsim.EntryID, stop sim.Time) {
	var tick func()
	tick = func() {
		if b.s.Now() >= stop {
			return
		}
		b.src.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Proto: netsim.ProtoUDP, Size: 1000})
		b.s.Schedule(4*sim.Millisecond, tick)
	}
	b.s.Schedule(0, tick)
}

func TestGetPaths(t *testing.T) {
	b := newBed(t)
	b.traffic(10, 2*sim.Second)
	b.s.Run(2 * sim.Second)

	if v, err := b.srv.Get("/fancy/ports/1/flags/count"); err != nil || v != 0 {
		t.Errorf("flags/count = %v, %v; want 0", v, err)
	}
	if v, err := b.srv.Get("/fancy/ports/1/flags/dedicated/0"); err != nil || v != false {
		t.Errorf("dedicated/0 = %v, %v; want false", v, err)
	}
	if v, err := b.srv.Get("/fancy/ports/1/sessions/completed"); err != nil || v.(int) == 0 {
		t.Errorf("sessions = %v, %v; want > 0", v, err)
	}
	if v, err := b.srv.Get("/fancy/control/messages"); err != nil || v.(int) == 0 {
		t.Errorf("control/messages = %v, %v", v, err)
	}
	if v, err := b.srv.Get("/fancy/layout"); err != nil || !strings.Contains(v.(string), "dedicated=2") {
		t.Errorf("layout = %v, %v", v, err)
	}
}

func TestGetErrors(t *testing.T) {
	b := newBed(t)
	bad := []string{
		"/nope", "/fancy/bogus", "/fancy/ports/9/flags/count",
		"/fancy/ports/1/flags/dedicated/99", "/fancy/ports/x/flags/count",
		"/fancy/control/quux", "/fancy/ports/1/unknown",
	}
	for _, p := range bad {
		if _, err := b.srv.Get(p); err == nil {
			t.Errorf("Get(%q) succeeded", p)
		}
	}
}

func TestSubscribeOnChange(t *testing.T) {
	b := newBed(t)
	var got []Update
	cancel := b.srv.Subscribe("/fancy/ports/1/events/", func(u Update) { got = append(got, u) })

	b.traffic(10, 4*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, sim.Second, 1.0, 10))
	b.s.Run(4 * sim.Second)

	if len(got) == 0 {
		t.Fatal("no updates delivered")
	}
	first := got[0]
	if !strings.HasPrefix(first.Path, "/fancy/ports/1/events/dedicated/10") {
		t.Errorf("first update path = %q", first.Path)
	}
	if first.Time < sim.Second {
		t.Errorf("update before the failure: %v", first.Time)
	}
	// Flag readable through Get after the event.
	if v, _ := b.srv.Get("/fancy/ports/1/flags/dedicated/0"); v != true {
		t.Error("flag not visible through Get after detection")
	}

	// After cancel, no more deliveries.
	n := len(got)
	cancel()
	b.traffic(11, b.s.Now()+2*sim.Second)
	b.s.Run(b.s.Now() + 2*sim.Second)
	if len(got) != n {
		t.Errorf("updates after cancel: %d → %d", n, len(got))
	}
}

func TestSubscribePrefixFiltering(t *testing.T) {
	b := newBed(t)
	var uniform, dedicated int
	b.srv.Subscribe("/fancy/ports/1/events/uniform", func(Update) { uniform++ })
	b.srv.Subscribe("/fancy/ports/1/events/dedicated/", func(Update) { dedicated++ })

	b.traffic(10, 4*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, sim.Second, 1.0, 10))
	b.s.Run(4 * sim.Second)

	if dedicated == 0 {
		t.Error("dedicated subscription got nothing")
	}
	if uniform != 0 {
		t.Errorf("uniform subscription got %d updates for a per-entry failure", uniform)
	}
}

func TestSampleMode(t *testing.T) {
	b := newBed(t)
	var samples []Update
	cancel, err := b.srv.Sample("/fancy/ports/1/sessions/completed", 100*sim.Millisecond,
		func(u Update) { samples = append(samples, u) })
	if err != nil {
		t.Fatal(err)
	}
	b.traffic(10, 1*sim.Second)
	b.s.Run(1 * sim.Second)
	if len(samples) < 8 || len(samples) > 11 {
		t.Fatalf("got %d samples in 1s at 100ms, want ≈10", len(samples))
	}
	// Monotone non-decreasing session counts.
	for i := 1; i < len(samples); i++ {
		if samples[i].Value.(int) < samples[i-1].Value.(int) {
			t.Fatal("session counter went backwards")
		}
	}
	cancel()
	n := len(samples)
	b.s.Run(b.s.Now() + 500*sim.Millisecond)
	if len(samples) != n {
		t.Error("samples delivered after cancel")
	}
}

func TestSampleInvalidPath(t *testing.T) {
	b := newBed(t)
	if _, err := b.srv.Sample("/fancy/bogus", sim.Second, func(Update) {}); err == nil {
		t.Fatal("invalid sample path accepted")
	}
}

func TestPathsDiscovery(t *testing.T) {
	b := newBed(t)
	paths := b.srv.Paths()
	if len(paths) < 5 {
		t.Fatalf("Paths() = %v", paths)
	}
	for _, p := range paths {
		if _, err := b.srv.Get(p); err != nil {
			t.Errorf("discovered path %q not Get-able: %v", p, err)
		}
	}
}

func TestPublishAllEventKinds(t *testing.T) {
	b := newBed(t)
	var paths []string
	b.srv.Subscribe("/fancy/ports/1/events/", func(u Update) { paths = append(paths, u.Path) })

	// Chain a downstream consumer through AttachEvents.
	chained := 0
	b.det.OnEvent = b.srv.AttachEvents(func(fancy.Event) { chained++ })

	for _, ev := range []fancy.Event{
		{Port: 1, Kind: fancy.EventDedicated, Entry: 10, Diff: 3},
		{Port: 1, Kind: fancy.EventTreeZoomStart},
		{Port: 1, Kind: fancy.EventTreeLeaf, Path: []uint16{1, 2, 3}, Diff: 5},
		{Port: 1, Kind: fancy.EventUniform},
		{Port: 1, Kind: fancy.EventLinkDown},
		{Port: 1, Kind: fancy.EventKind(200)}, // unknown kind: no update
	} {
		b.det.OnEvent(ev)
	}
	want := []string{
		"/fancy/ports/1/events/dedicated/10",
		"/fancy/ports/1/events/zooming",
		"/fancy/ports/1/events/tree-leaf",
		"/fancy/ports/1/events/uniform",
		"/fancy/ports/1/events/link-down",
	}
	if len(paths) != len(want) {
		t.Fatalf("published %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("path[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
	if chained != 6 {
		t.Errorf("chained handler saw %d events, want all 6", chained)
	}
}

func TestStatsPaths(t *testing.T) {
	b := newBed(t)
	for _, p := range StatsPaths() {
		v, err := b.srv.Get(p)
		if err != nil {
			t.Fatalf("Get(%q): %v", p, err)
		}
		want := 0
		if p == "/fancy/stats/epoch" {
			want = 1 // a fresh detector is epoch 1 (zero is reserved)
		}
		if v != want {
			t.Errorf("Get(%q) = %v, want %d on a fresh detector", p, v, want)
		}
	}
	for _, p := range []string{"/fancy/stats", "/fancy/stats/bogus", "/fancy/stats/epoch/extra"} {
		if _, err := b.srv.Get(p); err == nil {
			t.Errorf("Get(%q) succeeded", p)
		}
	}

	// A total blackhole drives retransmissions and a link-down report, all
	// visible through the stats paths.
	b.link.AB.SetFailure(netsim.FailUniform(3, 0, 1.0))
	b.traffic(10, 2*sim.Second)
	b.s.Run(2 * sim.Second)
	if v, _ := b.srv.Get("/fancy/stats/retransmits"); v.(int) == 0 {
		t.Error("retransmits = 0 after a blackhole")
	}
	if v, _ := b.srv.Get("/fancy/stats/link-down-events"); v.(int) == 0 {
		t.Error("link-down-events = 0 after a blackhole")
	}
}

func TestSubscribeAcrossRestart(t *testing.T) {
	// A Restart bumps the detector epoch and wipes protocol state. The
	// subscription must survive it, and no update sourced from a stale-epoch
	// session (e.g. an in-flight pre-restart Report) may be delivered: the
	// only post-restart updates come from fresh new-epoch sessions.
	b := newBed(t)
	var got []Update
	b.srv.Subscribe("/fancy/ports/1/events/", func(u Update) { got = append(got, u) })

	const restartAt = 2 * sim.Second
	b.traffic(10, 5*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, 500*sim.Millisecond, 1.0, 10))
	b.s.Run(restartAt)
	pre := len(got)
	if pre == 0 {
		t.Fatal("no updates before the restart")
	}

	b.det.Restart()
	if v, _ := b.srv.Get("/fancy/stats/epoch"); v != 2 {
		t.Errorf("epoch = %v after restart, want 2", v)
	}
	if v, _ := b.srv.Get("/fancy/stats/restarts"); v != 1 {
		t.Errorf("restarts = %v, want 1", v)
	}
	if v, _ := b.srv.Get("/fancy/ports/1/flags/dedicated/0"); v != false {
		t.Error("flag survived the restart")
	}

	// Within two link delays of the restart the only control messages that
	// can arrive are in-flight pre-restart (stale-epoch) ones; they must be
	// discarded, so no update may be delivered.
	b.s.Run(restartAt + 20*sim.Millisecond)
	if len(got) != pre {
		t.Fatalf("%d update(s) from stale-epoch sessions right after restart: %v",
			len(got)-pre, got[pre:])
	}

	// The failure persists, so fresh new-epoch sessions re-detect it and the
	// subscription keeps delivering.
	b.s.Run(5 * sim.Second)
	if len(got) == pre {
		t.Fatal("subscription delivered nothing after the restart")
	}
	for _, u := range got[pre:] {
		if u.Time < restartAt {
			t.Errorf("post-restart update timestamped %v, before the restart", u.Time)
		}
	}
	if v, _ := b.srv.Get("/fancy/ports/1/flags/dedicated/0"); v != true {
		t.Error("entry not re-flagged by post-restart sessions")
	}
}

func TestLinkDownPath(t *testing.T) {
	b := newBed(t)
	if v, err := b.srv.Get("/fancy/ports/1/link/down"); err != nil || v != false {
		t.Errorf("link/down = %v, %v; want false", v, err)
	}
	// Kill everything including control: link-down must show through Get.
	b.link.AB.SetFailure(netsim.FailUniform(3, 0, 1.0))
	b.traffic(10, 2*sim.Second)
	b.s.Run(2 * sim.Second)
	if v, _ := b.srv.Get("/fancy/ports/1/link/down"); v != true {
		t.Error("link/down = false after a total blackhole")
	}
}

func TestRegisterStatAndHHPaths(t *testing.T) {
	b := newBed(t)
	// Built-in HH stats paths read zero on a detector without the stage.
	for _, p := range []string{"/fancy/stats/hh-reports", "/fancy/stats/promotions",
		"/fancy/stats/demotions"} {
		if v, err := b.srv.Get(p); err != nil || v != 0 {
			t.Errorf("Get(%q) = %v, %v; want 0", p, v, err)
		}
	}
	if v, err := b.srv.Get("/fancy/ports/1/hh/occupied"); err != nil || v != 0 {
		t.Errorf("hh/occupied = %v, %v", v, err)
	}
	if v, err := b.srv.Get("/fancy/ports/1/hh/capacity"); err != nil || v != 0 {
		t.Errorf("hh/capacity = %v, %v", v, err)
	}

	// Component-owned counters mount under /fancy/stats/<name>.
	n := 7
	if err := b.srv.RegisterStat("hh-flaps-suppressed", func() int { return n }); err != nil {
		t.Fatal(err)
	}
	if v, err := b.srv.Get("/fancy/stats/hh-flaps-suppressed"); err != nil || v != 7 {
		t.Fatalf("registered stat = %v, %v", v, err)
	}
	n = 9
	if v, _ := b.srv.Get("/fancy/stats/hh-flaps-suppressed"); v != 9 {
		t.Errorf("registered stat is not read live: %v", v)
	}
	// Re-registration replaces the reader; shadowing a built-in is refused.
	if err := b.srv.RegisterStat("hh-flaps-suppressed", func() int { return 1 }); err != nil {
		t.Errorf("re-registration refused: %v", err)
	}
	if err := b.srv.RegisterStat("epoch", func() int { return 0 }); err == nil {
		t.Error("shadowing a built-in stat was accepted")
	}
	if err := b.srv.RegisterStat("a/b", func() int { return 0 }); err == nil {
		t.Error("stat name with a slash was accepted")
	}
	// Registered stats appear in discovery, sorted.
	var found bool
	for _, p := range b.srv.Paths() {
		if p == "/fancy/stats/hh-flaps-suppressed" {
			found = true
		}
	}
	if !found {
		t.Error("registered stat missing from Paths()")
	}
}
