// Package reroute implements the fine-grained fast-rerouting application of
// the paper's §6.1 case study: as soon as FANcY flags an entry — through a
// dedicated counter mismatch or a hash-tree leaf report — the application
// flips that entry's route to its backup next hop, diverting only the
// affected traffic in well under a second.
package reroute

import (
	"sort"

	"fancy/internal/fancy"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// App reroutes protected entries when the detector flags them.
type App struct {
	s   *sim.Sim
	det *fancy.Detector

	port    int
	entries map[netsim.EntryID]*netsim.Route
	byPath  map[string][]netsim.EntryID // tree hash path → protected entries

	// ReroutedAt records when each entry was diverted to its backup.
	ReroutedAt map[netsim.EntryID]sim.Time

	// OnReroute, if set, is notified for each diverted entry.
	OnReroute func(entry netsim.EntryID, at sim.Time)
}

// New creates a rerouting application for one monitored port of det.
// MonitorPort must already have been called for the port.
func New(s *sim.Sim, det *fancy.Detector, port int) *App {
	return &App{
		s: s, det: det, port: port,
		entries:    make(map[netsim.EntryID]*netsim.Route),
		byPath:     make(map[string][]netsim.EntryID),
		ReroutedAt: make(map[netsim.EntryID]sim.Time),
	}
}

// Protect registers an entry and its route handle. The route must have a
// valid Backup port.
func (a *App) Protect(entry netsim.EntryID, route *netsim.Route) {
	a.entries[entry] = route
	if _, dedicated := a.det.DedicatedSlot(entry); !dedicated {
		k := pathKey(a.det.EntryPath(a.port, entry))
		a.byPath[k] = append(a.byPath[k], entry)
	}
}

// HandleEvent reacts to a detector event. Wire it into the detector's
// OnEvent callback (possibly alongside other consumers):
//
//	det.OnEvent = func(ev fancy.Event) { app.HandleEvent(ev); ... }
func (a *App) HandleEvent(ev fancy.Event) {
	if ev.Port != a.port {
		return
	}
	switch ev.Kind {
	case fancy.EventDedicated:
		a.reroute(ev.Entry)
	case fancy.EventTreeLeaf:
		for _, e := range a.byPath[pathKey(ev.Path)] {
			a.reroute(e)
		}
	case fancy.EventUniform, fancy.EventLinkDown:
		// The whole link is compromised: divert every protected entry,
		// the selective equivalent of a BFD-triggered reroute.
		for e := range a.entries {
			a.reroute(e)
		}
	}
}

func (a *App) reroute(entry netsim.EntryID) {
	route, ok := a.entries[entry]
	if !ok || route.UseBackup || route.Backup < 0 {
		return
	}
	route.UseBackup = true
	a.ReroutedAt[entry] = a.s.Now()
	if a.OnReroute != nil {
		a.OnReroute(entry, a.s.Now())
	}
}

// Targets lists the protected entries ev would divert, sorted — the same
// dispatch as HandleEvent without the side effect, so a correlator-side
// commit gate can verify each flip before issuing it.
func (a *App) Targets(ev fancy.Event) []netsim.EntryID {
	if ev.Port != a.port {
		return nil
	}
	var out []netsim.EntryID
	switch ev.Kind {
	case fancy.EventDedicated:
		if _, ok := a.entries[ev.Entry]; ok {
			out = append(out, ev.Entry)
		}
	case fancy.EventTreeLeaf:
		out = append(out, a.byPath[pathKey(ev.Path)]...)
	case fancy.EventUniform, fancy.EventLinkDown:
		for e := range a.entries {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Route returns the live route handle of a protected entry.
func (a *App) Route(entry netsim.EntryID) (*netsim.Route, bool) {
	r, ok := a.entries[entry]
	return r, ok
}

// Divert flips one protected entry to its backup next hop: the verified
// per-entry commit command. HandleEvent's whole-event dispatch is the
// unverified path.
func (a *App) Divert(entry netsim.EntryID) {
	a.reroute(entry)
}

// SetBackup rewrites an entry's backup next hop — the correlator's repair
// action when the configured backup would be unsafe. Reports whether the
// entry is protected.
func (a *App) SetBackup(entry netsim.EntryID, port int) bool {
	route, ok := a.entries[entry]
	if !ok {
		return false
	}
	route.Backup = port
	return true
}

// Restore reverts an entry to its primary route (e.g. after repair).
func (a *App) Restore(entry netsim.EntryID) {
	if route, ok := a.entries[entry]; ok {
		route.UseBackup = false
		delete(a.ReroutedAt, entry)
	}
}

// Rerouted reports whether the entry is currently on its backup path.
func (a *App) Rerouted(entry netsim.EntryID) bool {
	r, ok := a.entries[entry]
	return ok && r.UseBackup
}

func pathKey(p []uint16) string {
	b := make([]byte, 2*len(p))
	for i, v := range p {
		b[2*i] = byte(v >> 8)
		b[2*i+1] = byte(v)
	}
	return string(b)
}
