package reroute

import (
	"testing"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// fig10bed reproduces the §6.1 testbed topology at simulation scale:
//
//	src — up —(primary, failure injected)— down — dst
//	        \—(backup)————————————————————/
type fig10bed struct {
	s        *sim.Sim
	src, dst *netsim.Host
	up, down *netsim.Switch
	primary  *netsim.Link
	det      *fancy.Detector
	app      *App
	arrived  map[netsim.EntryID]int
}

func newFig10(t *testing.T, cfg fancy.Config) *fig10bed {
	t.Helper()
	s := sim.New(1)
	b := &fig10bed{s: s, arrived: make(map[netsim.EntryID]int)}
	b.src = netsim.NewHost(s, "src")
	b.dst = netsim.NewHost(s, "dst")
	b.up = netsim.NewSwitch(s, "up", 3)
	b.down = netsim.NewSwitch(s, "down", 3)
	lc := netsim.LinkConfig{Delay: 2 * sim.Millisecond, RateBps: 10e9}
	netsim.Connect(s, b.src, 0, b.up, 0, lc)
	b.primary = netsim.Connect(s, b.up, 1, b.down, 0, lc)
	netsim.Connect(s, b.up, 2, b.down, 2, lc) // backup
	netsim.Connect(s, b.down, 1, b.dst, 0, lc)
	b.down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	b.dst.Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) { b.arrived[p.Entry]++ })

	var err error
	b.det, err = fancy.NewDetector(s, b.up, cfg)
	if err != nil {
		t.Fatal(err)
	}
	downDet, err := fancy.NewDetector(s, b.down, cfg)
	if err != nil {
		t.Fatal(err)
	}
	downDet.ListenPort(0)
	b.det.MonitorPort(1)
	b.app = New(s, b.det, 1)
	b.det.OnEvent = func(ev fancy.Event) { b.app.HandleEvent(ev) }
	return b
}

func (b *fig10bed) protect(entry netsim.EntryID) {
	route := b.up.Routes.InsertEntry(entry, netsim.Route{Port: 1, Backup: 2})
	b.app.Protect(entry, route)
}

func (b *fig10bed) udp(entry netsim.EntryID, pps int, stop sim.Time) {
	gap := sim.Second / sim.Time(pps)
	var tick func()
	tick = func() {
		if b.s.Now() >= stop {
			return
		}
		b.src.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Proto: netsim.ProtoUDP, Size: 1000})
		b.s.Schedule(gap, tick)
	}
	b.s.Schedule(0, tick)
}

var cfg = fancy.Config{
	HighPriority: []netsim.EntryID{10},
	Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
	TreeSeed:     7,
}

func TestDedicatedEntryReroutedSubSecond(t *testing.T) {
	b := newFig10(t, cfg)
	b.protect(10)
	b.udp(10, 500, 6*sim.Second)
	const failAt = 2 * sim.Second
	b.primary.AB.SetFailure(netsim.FailEntries(3, failAt, 1.0, 10))
	b.s.Run(6 * sim.Second)

	at, ok := b.app.ReroutedAt[10]
	if !ok {
		t.Fatal("entry never rerouted")
	}
	if lat := at - failAt; lat > sim.Second {
		t.Errorf("reroute latency = %v, want sub-second (§6.1)", lat)
	}
	if !b.app.Rerouted(10) {
		t.Error("Rerouted(10) = false")
	}
	// Traffic must keep flowing after the reroute: ≈500 pps × ≈3.7 s
	// remaining ≥ 1500 packets beyond what arrived pre-failure (≈1000).
	if got := b.arrived[10]; got < 2300 {
		t.Errorf("only %d packets arrived; reroute did not restore traffic", got)
	}
}

func TestTreeEntryRerouted(t *testing.T) {
	b := newFig10(t, cfg)
	const entry = netsim.EntryID(77) // best effort
	b.protect(entry)
	b.udp(entry, 500, 8*sim.Second)
	const failAt = 2 * sim.Second
	b.primary.AB.SetFailure(netsim.FailEntries(4, failAt, 1.0, entry))
	b.s.Run(8 * sim.Second)

	at, ok := b.app.ReroutedAt[entry]
	if !ok {
		t.Fatal("tree-monitored entry never rerouted")
	}
	// Tree detection needs ≈3 zooming intervals (3×200 ms) plus protocol
	// overhead: still sub-second as in Figure 10.
	if lat := at - failAt; lat > 1500*sim.Millisecond {
		t.Errorf("reroute latency = %v, want ≈3 zooming intervals", lat)
	}
}

func TestOnlyAffectedEntryRerouted(t *testing.T) {
	b := newFig10(t, cfg)
	b.protect(10)
	const healthy = netsim.EntryID(80)
	b.protect(healthy)
	b.udp(10, 500, 6*sim.Second)
	b.udp(healthy, 500, 6*sim.Second)
	b.primary.AB.SetFailure(netsim.FailEntries(5, 2*sim.Second, 1.0, 10))
	b.s.Run(6 * sim.Second)

	if !b.app.Rerouted(10) {
		t.Fatal("failed entry not rerouted")
	}
	if b.app.Rerouted(healthy) {
		t.Error("healthy entry rerouted: rerouting is not selective")
	}
}

func TestPartialLossReroute(t *testing.T) {
	// Figure 10 also shows detection at 1% and 10% loss.
	for _, rate := range []float64{0.10, 0.01} {
		b := newFig10(t, cfg)
		b.protect(10)
		b.udp(10, 2000, 8*sim.Second)
		b.primary.AB.SetFailure(netsim.FailEntries(6, 2*sim.Second, rate, 10))
		b.s.Run(8 * sim.Second)
		at, ok := b.app.ReroutedAt[10]
		if !ok {
			t.Fatalf("loss rate %.0f%%: never rerouted", rate*100)
		}
		if lat := at - 2*sim.Second; lat > sim.Second {
			t.Errorf("loss rate %.0f%%: reroute latency %v, want sub-second", rate*100, lat)
		}
	}
}

func TestUniformFailureReroutesEverything(t *testing.T) {
	b := newFig10(t, cfg)
	for e := netsim.EntryID(50); e < 70; e++ {
		b.protect(e)
		b.udp(e, 100, 6*sim.Second)
	}
	b.primary.AB.SetFailure(netsim.FailUniform(8, 2*sim.Second, 0.5))
	b.s.Run(6 * sim.Second)
	for e := netsim.EntryID(50); e < 70; e++ {
		if !b.app.Rerouted(e) {
			t.Fatalf("entry %d not rerouted on uniform failure", e)
		}
	}
}

func TestRestore(t *testing.T) {
	b := newFig10(t, cfg)
	b.protect(10)
	b.udp(10, 500, 4*sim.Second)
	b.primary.AB.SetFailure(netsim.FailEntries(9, sim.Second, 1.0, 10))
	b.s.Run(4 * sim.Second)
	if !b.app.Rerouted(10) {
		t.Fatal("precondition: entry rerouted")
	}
	b.app.Restore(10)
	if b.app.Rerouted(10) {
		t.Error("Restore did not revert the route")
	}
	if _, ok := b.app.ReroutedAt[10]; ok {
		t.Error("Restore did not clear ReroutedAt")
	}
}

func TestUnprotectedEntryIgnored(t *testing.T) {
	b := newFig10(t, cfg)
	b.udp(10, 500, 4*sim.Second) // entry 10 dedicated but NOT protected
	b.primary.AB.SetFailure(netsim.FailEntries(10, sim.Second, 1.0, 10))
	b.s.Run(4 * sim.Second)
	if len(b.app.ReroutedAt) != 0 {
		t.Error("unprotected entry was rerouted")
	}
}
