package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2.0", got)
	}
	if got := (1500 * Microsecond).Duration(); got != 1500*time.Microsecond {
		t.Errorf("Duration() = %v, want 1.5ms", got)
	}
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration = %v, want 3ms", got)
	}
	if got := (250 * Millisecond).String(); got != "250ms" {
		t.Errorf("String() = %q, want 250ms", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(30*Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*Millisecond, func() { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30*Millisecond {
		t.Errorf("final time = %v, want 30ms", s.Now())
	}
}

func TestFIFOAtSameTimestamp(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(5*Millisecond, func() { order = append(order, i) })
	}
	s.Run(0)
	if !sort.IntsAreSorted(order) {
		t.Fatalf("events at equal timestamps did not run in insertion order: %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, s.Now())
		if len(ticks) < 5 {
			s.Schedule(100*Millisecond, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run(0)
	want := []Time{0, 100 * Millisecond, 200 * Millisecond, 300 * Millisecond, 400 * Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(ticks), len(want))
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestHorizonStopsExecution(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(1*Second, func() { ran++ })
	s.Schedule(3*Second, func() { ran++ })
	end := s.Run(2 * Second)
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if end != 2*Second {
		t.Errorf("Run returned %v, want 2s", end)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	// Resuming past the horizon executes the remaining event.
	s.Run(0)
	if ran != 2 {
		t.Errorf("after resume ran = %d, want 2", ran)
	}
}

func TestHorizonAdvancesClockWhenQueueEmpty(t *testing.T) {
	s := New(1)
	s.Run(5 * Second)
	if s.Now() != 5*Second {
		t.Errorf("Now() = %v, want 5s", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.Schedule(1*Second, func() { ran = true })
	if !tm.Active() {
		t.Fatal("timer should be active after scheduling")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Active() {
		t.Error("timer should be inactive after Stop")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	s.Run(0)
	if ran {
		t.Error("cancelled event must not run")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.Schedule(1*Millisecond, func() {})
	s.Run(0)
	if tm.Active() {
		t.Error("timer should be inactive after firing")
	}
	if tm.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if tm.Active() {
		t.Error("zero Timer reports Active")
	}
	if tm.Stop() {
		t.Error("zero Timer Stop reports true")
	}
	var nilTm *Timer
	if nilTm.Active() || nilTm.Stop() {
		t.Error("nil *Timer must be inert")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(1*Millisecond, func() { ran++; s.Stop() })
	s.Schedule(2*Millisecond, func() { ran++ })
	s.Run(0)
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (Stop should halt the loop)", ran)
	}
	s.Run(0) // resumes
	if ran != 2 {
		t.Errorf("after resume ran = %d, want 2", ran)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(1*Second, func() {})
	s.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("ScheduleAt in the past should panic")
		}
	}()
	s.ScheduleAt(500*Millisecond, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		for i := 0; i < 50; i++ {
			d := Time(s.Rand().Intn(1000)) * Microsecond
			s.Schedule(d, func() { out = append(out, int64(s.Now())) })
		}
		s.Run(0)
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of events with arbitrary non-negative delays, Run
// executes all of them in non-decreasing timestamp order and the clock ends
// at the maximum timestamp.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(seed int64, raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		s := New(seed)
		var fired []Time
		var max Time
		for _, r := range raw {
			d := Time(r%1_000_000) * Microsecond
			if d > max {
				max = d
			}
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run(0)
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling an arbitrary subset of timers runs exactly the
// complement.
func TestPropertyCancellation(t *testing.T) {
	f := func(mask []bool) bool {
		if len(mask) > 300 {
			mask = mask[:300]
		}
		s := New(3)
		ran := make([]bool, len(mask))
		timers := make([]*Timer, len(mask))
		for i := range mask {
			i := i
			timers[i] = s.Schedule(Time(i+1)*Microsecond, func() { ran[i] = true })
		}
		for i, cancel := range mask {
			if cancel {
				timers[i].Stop()
			}
		}
		s.Run(0)
		for i := range mask {
			if ran[i] == mask[i] {
				return false // cancelled ran, or non-cancelled didn't
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.Schedule(Time(j)*Microsecond, func() {})
		}
		s.Run(0)
	}
}

func BenchmarkTimerWheelChurn(b *testing.B) {
	// Schedule/cancel churn, the pattern FANcY retransmission timers create.
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := s.Schedule(Time(i+1), func() {})
		tm.Stop()
	}
	s.Run(0)
}
