package sim

import (
	"fmt"
	"strings"
	"testing"
)

// parTranscript runs the reference sharded workload and returns one
// transcript per shard plus the global log, the end time, and the executed
// count. The exact same code drives both engines: with workers == 0 the
// Sim stays classic (everything lands on the root heap in one global
// stream); otherwise SetParallel switches on the windowed engine.
//
// The workload exercises every scheduling path: self-rescheduling
// shard-local ticks, per-shard RNG draws, cross-shard sends at or beyond
// the lookahead, a cancelled-then-recycled timer per shard, and a global
// observer event that acts as a window barrier.
func parTranscript(seed int64, shards, workers int, horizon Time) ([]string, Time, uint64) {
	const lookahead = Millisecond
	root := New(seed)
	if workers > 0 {
		root.SetParallel(workers, lookahead)
	}
	views := root.Shards(shards)
	logs := make([]strings.Builder, shards+1)
	glog := &logs[shards]

	for i := 0; i < shards; i++ {
		i := i
		v := views[i]
		next := views[(i+1)%shards]
		// Distinct per-shard periods and offsets keep every event
		// timestamp unique, so the classic global order and the windowed
		// order agree exactly (see DESIGN.md §11 on ties).
		period := Time(100_000 + 1_000*i + 7*i)
		delay := lookahead + Time(50_000+13*i)
		n := 0
		var tick func()
		tick = func() {
			n++
			fmt.Fprintf(&logs[i], "s%d tick %d at %d rng %d\n", i, n, v.Now(), v.Rand().Intn(1000))
			if n%5 == 0 {
				from, at := i, v.Now()
				v.CrossAt(next, at+delay, func() {
					fmt.Fprintf(&logs[(from+1)%shards], "s%d recv from s%d sent %d at %d\n",
						(from+1)%shards, from, at, next.Now())
				})
			}
			if n%7 == 0 {
				// Cancel a timer the same shard scheduled: exercises pool
				// recycling under both engines.
				tm := v.Schedule(period/2, func() {
					fmt.Fprintf(&logs[i], "s%d SHOULD NOT RUN\n", i)
				})
				tm.Stop()
			}
			v.After(period, tick)
		}
		v.At(Time(i+1), tick)
	}

	var observe func()
	observe = func() {
		fmt.Fprintf(glog, "G at %d pending %d\n", root.Now(), root.Pending())
		root.After(500*Microsecond, observe)
	}
	root.At(250*Microsecond, observe)

	end := root.Run(horizon)
	out := make([]string, len(logs))
	for i := range logs {
		out[i] = logs[i].String()
	}
	return out, end, root.Executed
}

// TestSameSeedSameTranscriptParallel is the engine-level half of the
// sequential-vs-parallel equivalence contract: the classic engine and the
// windowed engine at 1, 2, and 4 workers all produce byte-identical
// per-shard transcripts, the same end time, and the same executed count.
func TestSameSeedSameTranscriptParallel(t *testing.T) {
	const (
		seed    = 20220822
		shards  = 4
		horizon = 50 * Millisecond
	)
	refLogs, refEnd, refExec := parTranscript(seed, shards, 0, horizon)
	for i, l := range refLogs {
		if l == "" {
			t.Fatalf("classic transcript %d is empty — workload broken", i)
		}
		if strings.Contains(l, "SHOULD NOT RUN") {
			t.Fatalf("cancelled timer fired in classic run:\n%s", l)
		}
	}
	for _, workers := range []int{1, 2, 4} {
		logs, end, exec := parTranscript(seed, shards, workers, horizon)
		if end != refEnd {
			t.Errorf("workers=%d: end time %v, classic %v", workers, end, refEnd)
		}
		if exec != refExec {
			t.Errorf("workers=%d: executed %d events, classic %d", workers, exec, refExec)
		}
		for i := range refLogs {
			if logs[i] != refLogs[i] {
				t.Errorf("workers=%d: transcript %d differs from classic engine\nclassic:\n%s\nparallel:\n%s",
					workers, i, refLogs[i], logs[i])
			}
		}
	}
}

// Stop from inside a shard event must end the parallel run at the next
// window boundary with work still queued.
func TestParallelStop(t *testing.T) {
	root := New(7)
	root.SetParallel(2, Millisecond)
	views := root.Shards(2)
	stopped := false
	for _, v := range views {
		v := v
		var tick func()
		tick = func() {
			if v.Now() >= 10*Millisecond && v.shard == 0 && !stopped {
				stopped = true
				v.Stop()
			}
			v.After(100*Microsecond, tick)
		}
		v.At(0, tick)
	}
	end := root.Run(Second)
	if end >= Second {
		t.Fatalf("stopped parallel run ended at %v, want before the horizon", end)
	}
	if root.Pending() == 0 {
		t.Fatal("stopped parallel run drained its queue")
	}
	// The run resumes cleanly.
	if end := root.Run(20 * Millisecond); end != 20*Millisecond {
		t.Fatalf("resumed run ended at %v, want %v", end, 20*Millisecond)
	}
}

// A cross-shard send inside the lookahead window means the configured
// lookahead is not a true lower bound — that must fail loudly.
func TestCrossAtInsideWindowPanics(t *testing.T) {
	root := New(3)
	root.SetParallel(2, Millisecond)
	views := root.Shards(2)
	views[0].At(Microsecond, func() {
		views[0].CrossAt(views[1], views[0].Now()+Nanosecond, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("CrossAt inside the lookahead window did not panic")
		}
	}()
	root.Run(Second)
}

// Scheduling on the root Sim while shard workers are running is a
// determinism hazard and must panic.
func TestRootScheduleDuringWindowPanics(t *testing.T) {
	root := New(3)
	root.SetParallel(1, Millisecond)
	views := root.Shards(1)
	views[0].At(Microsecond, func() {
		root.After(Millisecond, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("root schedule during a parallel window did not panic")
		}
	}()
	root.Run(Second)
}
