// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine is the substrate every packet-level experiment in this
// repository runs on. It provides a virtual clock, an event queue ordered by
// (time, insertion sequence), cancellable timers, and a seeded random number
// generator so that every experiment is exactly reproducible from its seed.
//
// The design mirrors the scheduling core of ns-3, which the FANcY paper used
// for its software evaluation: events are closures executed at a virtual
// timestamp, and the simulation runs until the queue drains or a configured
// horizon is reached.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It is a distinct type from time.Duration to keep absolute
// timestamps and durations from being mixed up in scheduling code.
type Time int64

// Common conversion helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a virtual timestamp into a time.Duration from t=0.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the timestamp with time.Duration rules (e.g. "1.5s").
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a wall-clock style duration to a virtual duration.
func FromDuration(d time.Duration) Time { return Time(d) }

// An event is a scheduled closure. Events with equal timestamps execute in
// insertion order, which keeps simulations deterministic.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool // cancelled

	index int // heap index, maintained by eventQueue
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event. Its zero value is an inert timer:
// Stop and Active are safe to call and report false.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event had still been
// pending (i.e. the cancellation prevented an execution).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.index == -1 {
		return false
	}
	t.ev.dead = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.dead && t.ev.index != -1
}

// Sim is a single-threaded discrete-event simulator. The zero value is not
// usable; construct one with New.
type Sim struct {
	now     Time
	seq     uint64
	queue   eventQueue
	seed    int64
	rng     *rand.Rand
	stopped bool

	// Executed counts events that have run, for diagnostics and tests.
	Executed uint64
}

// New returns a simulator whose random generator is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation's deterministic random number generator.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Seed returns the seed the simulator was constructed with.
func (s *Sim) Seed() int64 { return s.seed }

// DeriveSeed maps the simulation seed plus a stream label to an independent
// sub-seed. Components that need their own RNG (failure injectors, chaos
// injectors, workload generators) derive it from here so that two runs with
// the same simulation seed replay identical randomness regardless of how
// many other components consumed the shared Rand() stream in between.
func (s *Sim) DeriveSeed(stream string) int64 {
	h := fnv.New64a()
	h.Write([]byte(stream))
	return s.seed ^ int64(h.Sum64())
}

// DeriveRand returns a deterministic RNG for a named stream (see DeriveSeed).
func (s *Sim) DeriveRand(stream string) *rand.Rand {
	return rand.New(rand.NewSource(s.DeriveSeed(stream)))
}

// Schedule runs fn after delay virtual nanoseconds. A negative delay is an
// error in the caller; Schedule panics to surface it immediately.
func (s *Sim) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at the absolute virtual time at, which must not be in
// the past.
func (s *Sim) ScheduleAt(at Time, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule in the past: at=%v now=%v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// Stop makes Run return after the currently executing event completes.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue is empty, until the
// horizon is crossed, or until Stop is called. A zero horizon means no limit.
// It returns the virtual time at which the run ended.
func (s *Sim) Run(horizon Time) Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		ev := s.queue[0]
		if horizon > 0 && ev.at > horizon {
			s.now = horizon
			return s.now
		}
		heap.Pop(&s.queue)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.Executed++
		ev.fn()
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return s.now
}

// Pending reports the number of live events still queued.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
