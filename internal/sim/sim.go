// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine is the substrate every packet-level experiment in this
// repository runs on. It provides a virtual clock, an event queue ordered by
// (time, insertion sequence), cancellable timers, and a seeded random number
// generator so that every experiment is exactly reproducible from its seed.
//
// The design mirrors the scheduling core of ns-3, which the FANcY paper used
// for its software evaluation: events are closures executed at a virtual
// timestamp, and the simulation runs until the queue drains or a configured
// horizon is reached.
//
// Two engine-level performance features exist beyond the classic loop:
//
//   - Event pooling: executed and cancelled events are recycled through a
//     free list, so steady-state scheduling via At/After allocates nothing.
//     Schedule/ScheduleAt additionally allocate their *Timer handle; hot
//     paths that never cancel should prefer At/After.
//   - A conservative-lookahead parallel scheduler (see parallel.go): nodes
//     are partitioned into shards, events of the same lookahead window run
//     concurrently across shards, and cross-shard sends merge at window
//     boundaries in a deterministic order.
package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It is a distinct type from time.Duration to keep absolute
// timestamps and durations from being mixed up in scheduling code.
type Time int64

// Common conversion helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a virtual timestamp into a time.Duration from t=0.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the timestamp with time.Duration rules (e.g. "1.5s").
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a wall-clock style duration to a virtual duration.
func FromDuration(d time.Duration) Time { return Time(d) }

// An event is a scheduled closure. Events with equal timestamps execute in
// insertion order, which keeps simulations deterministic. Events are pooled:
// after execution or cancellation they return to the owning Sim's free list,
// and gen is bumped so stale Timer handles can detect the recycling.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool   // cancelled while staged (parallel mode only)
	gen  uint64 // incremented on every release to the pool

	shard int32 // owning shard, or -1 for global/unsharded events

	// Deterministic merge key for events staged at a parallel window
	// boundary: the virtual time of the event that scheduled them. Zero
	// for events scheduled outside window execution.
	parentAt Time

	// owner is the Sim whose queue (or staging buffer) holds the event,
	// so Timer.Stop can remove it from the right heap. For a parallel
	// run this is the root for heap events and the shard view for
	// window-local and staged events.
	owner *Sim

	index int // heap index, indexFree, or indexStaged
}

const (
	indexFree   = -1 // not in any heap: pooled, executing, or in a window batch
	indexStaged = -2 // in a shard's window-boundary staging buffer
)

// eventQueue is a 4-ary min-heap of events ordered by (at, seq), hand
// rolled instead of container/heap: the event loop spends most of its time
// here, and a direct implementation avoids the interface dispatch per
// comparison, halves the tree depth, and moves each displaced event once
// (hole-based sifting) instead of swapping pairwise.
type eventQueue []*event

// before is the heap order: time, ties broken by insertion sequence.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp moves the hole at i toward the root until ev fits, then plants ev.
func (q eventQueue) siftUp(i int, ev *event) {
	for i > 0 {
		p := (i - 1) >> 2
		pe := q[p]
		if !before(ev, pe) {
			break
		}
		q[i] = pe
		pe.index = i
		i = p
	}
	q[i] = ev
	ev.index = i
}

// siftDown moves the hole at i toward the leaves until ev fits.
func (q eventQueue) siftDown(i int, ev *event) {
	n := len(q)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		min, me := c, q[c]
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if ke := q[k]; before(ke, me) {
				min, me = k, ke
			}
		}
		if !before(me, ev) {
			break
		}
		q[i] = me
		me.index = i
		i = min
	}
	q[i] = ev
	ev.index = i
}

func heapPush(qp *eventQueue, ev *event) {
	*qp = append(*qp, nil)
	(*qp).siftUp(len(*qp)-1, ev)
}

func heapPop(qp *eventQueue) *event {
	q := *qp
	top := q[0]
	top.index = indexFree
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	*qp = q[:n]
	if n > 0 {
		q[:n].siftDown(0, last)
	}
	return top
}

// heapRemove removes the event at index i (Timer.Stop's O(log n) path).
func heapRemove(qp *eventQueue, i int) *event {
	q := *qp
	ev := q[i]
	ev.index = indexFree
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	*qp = q[:n]
	if i < n {
		q = q[:n]
		if before(last, ev) {
			q.siftUp(i, last)
		} else {
			q.siftDown(i, last)
		}
	}
	return ev
}

// Timer is a handle to a scheduled event. Its zero value is an inert timer:
// Stop and Active are safe to call and report false.
//
// Timers are owned by the Sim (or shard view) they were scheduled on; in
// parallel mode a timer must only be stopped from its own shard.
type Timer struct {
	s   *Sim
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the event had still been
// pending (i.e. the cancellation prevented an execution). Cancellation
// removes the event from the queue immediately (O(log n)), so a stopped
// long-horizon timer holds no memory and does not inflate the queue.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	ev := t.ev
	s := t.s
	r := s.root
	if r.par != nil && r.par.inWindow {
		// Shard worker goroutines are running: only shard-local
		// structures may be mutated from here.
		if ev.index >= 0 && ev.owner == s && s != r {
			heapRemove(&s.queue, ev.index)
			s.live--
			s.release(ev)
			return true
		}
		if ev.index == indexStaged && ev.owner == s {
			ev.dead = true
			ev.fn = nil
			s.live--
			return true
		}
		// Root-heap (or foreign) event: mark dead without touching the
		// shared heap; the root loop recycles it when it surfaces, and
		// decrements live then.
		ev.dead = true
		ev.fn = nil
		return true
	}
	if ev.index >= 0 {
		// Queued in the owner's heap: remove and recycle immediately.
		heapRemove(&ev.owner.queue, ev.index)
		ev.owner.live--
		ev.owner.release(ev)
		return true
	}
	if ev.index == indexStaged {
		ev.dead = true
		ev.fn = nil
		ev.owner.live--
		return true
	}
	return false
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && !t.ev.dead &&
		t.ev.index != indexFree
}

// Sim is a discrete-event simulator. The zero value is not usable;
// construct one with New. A Sim is single-threaded unless SetParallel
// enables the sharded scheduler, and even then event handlers of one shard
// never run concurrently with each other.
type Sim struct {
	now     Time
	seq     uint64
	queue   eventQueue
	seed    int64
	rng     *rand.Rand
	stopped bool
	live    int      // non-cancelled events currently queued or staged
	free    []*event // event pool

	// Parallel-mode fields (see parallel.go). On a root Sim, par is set by
	// SetParallel and views holds the shard views. On a shard view, root
	// points to the owning Sim and shard is its index; the view reuses
	// queue as its window-local heap and stage as its boundary buffer.
	par      *parRuntime
	root     *Sim
	shard    int32
	views    []*Sim
	stage    []*event
	batch    []*event // this shard's slice of the current window, in (at, seq) order
	wend     Time     // current window end while this shard executes
	lseq     uint64   // window-local seq counter, frozen-root-seq based
	executed uint64   // events run this window, merged into root.Executed at the barrier

	// Executed counts events that have run, for diagnostics and tests.
	Executed uint64
}

// New returns a simulator whose random generator is seeded with seed.
func New(seed int64) *Sim {
	s := &Sim{seed: seed, rng: rand.New(rand.NewSource(seed)), shard: -1}
	s.root = s
	return s
}

// Now returns the current virtual time. On a shard view this is the shard's
// local clock, which stays within one lookahead window of every other shard.
func (s *Sim) Now() Time {
	if s.root != s && s.root.now > s.now {
		return s.root.now
	}
	return s.now
}

// Rand exposes the simulation's deterministic random number generator. Each
// shard view has its own independent stream (derived from the seed), so
// parallel execution never races on, or nondeterministically interleaves,
// the root stream.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Seed returns the seed the simulator was constructed with.
func (s *Sim) Seed() int64 { return s.root.seed }

// DeriveSeed maps the simulation seed plus a stream label to an independent
// sub-seed. Components that need their own RNG (failure injectors, chaos
// injectors, workload generators) derive it from here so that two runs with
// the same simulation seed replay identical randomness regardless of how
// many other components consumed the shared Rand() stream in between.
func (s *Sim) DeriveSeed(stream string) int64 {
	h := fnv.New64a()
	h.Write([]byte(stream))
	return s.root.seed ^ int64(h.Sum64())
}

// DeriveRand returns a deterministic RNG for a named stream (see DeriveSeed).
func (s *Sim) DeriveRand(stream string) *rand.Rand {
	return rand.New(rand.NewSource(s.DeriveSeed(stream)))
}

// alloc takes an event from the pool (or allocates one) and resets it.
func (s *Sim) alloc(at Time, fn func()) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.fn = fn
	ev.dead = false
	ev.shard = s.shard
	ev.parentAt = 0
	ev.owner = s
	ev.index = indexFree
	return ev
}

// release returns an event to the pool. Bumping gen invalidates any Timer
// handle still pointing at it.
func (s *Sim) release(ev *event) {
	ev.fn = nil
	ev.gen++
	s.free = append(s.free, ev)
}

// Schedule runs fn after delay virtual nanoseconds and returns a cancellable
// handle. A negative delay is an error in the caller; Schedule panics to
// surface it immediately. Prefer After when the handle is not needed: the
// handle is the only allocation on this path.
func (s *Sim) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.Now()+delay, fn)
}

// ScheduleAt runs fn at the absolute virtual time at, which must not be in
// the past, and returns a cancellable handle.
func (s *Sim) ScheduleAt(at Time, fn func()) *Timer {
	ev := s.schedule(at, fn)
	return &Timer{s: s, ev: ev, gen: ev.gen}
}

// ScheduleTimer is Schedule returning the handle by value, for callers
// that keep the handle in a struct field: rearming a recurring timer then
// allocates nothing (the zero Timer is inert, so the field needs no
// initialization).
func (s *Sim) ScheduleTimer(delay Time, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	ev := s.schedule(s.Now()+delay, fn)
	return Timer{s: s, ev: ev, gen: ev.gen}
}

// After runs fn after delay virtual nanoseconds. It is Schedule without the
// cancellation handle — and therefore without its allocation: with a warm
// event pool this path does not allocate at all.
func (s *Sim) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.schedule(s.Now()+delay, fn)
}

// At runs fn at the absolute virtual time at (the handle-free ScheduleAt).
func (s *Sim) At(at Time, fn func()) {
	s.schedule(at, fn)
}

// schedule is the common scheduling path. On a root Sim outside parallel
// execution it pushes straight onto the heap; shard views route through the
// window-aware path in parallel.go.
func (s *Sim) schedule(at Time, fn func()) *event {
	if s.root != s || (s.par != nil && s.par.inWindow) {
		return s.scheduleSharded(at, fn)
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule in the past: at=%v now=%v", at, s.now))
	}
	ev := s.alloc(at, fn)
	ev.seq = s.seq
	s.seq++
	heapPush(&s.queue, ev)
	s.live++
	return ev
}

// Stop makes Run return after the currently executing event completes. In
// parallel mode the run stops at the next window boundary.
func (s *Sim) Stop() {
	r := s.root
	if r.par != nil {
		r.par.stopReq.Store(true)
		return
	}
	r.stopped = true
}

// Run executes events in timestamp order until the queue is empty, until the
// horizon is crossed, or until Stop is called. A zero horizon means no limit.
// It returns the virtual time at which the run ended: the horizon when the
// horizon bounded the run, otherwise the time of the last executed event.
// In particular, after Stop() the clock is NOT advanced to the horizon —
// the stop time is the end time.
func (s *Sim) Run(horizon Time) Time {
	if s.par != nil {
		return s.runParallel(horizon)
	}
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		ev := s.queue[0]
		if horizon > 0 && ev.at > horizon {
			s.now = horizon
			return s.now
		}
		heapPop(&s.queue)
		if ev.dead {
			s.release(ev)
			continue
		}
		s.now = ev.at
		s.live--
		s.Executed++
		fn := ev.fn
		s.release(ev)
		fn()
	}
	if s.stopped {
		return s.now
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return s.now
}

// Pending reports the number of live events still queued, in O(1).
func (s *Sim) Pending() int { return s.live }
