package sim

import (
	"testing"
)

// Run used to clamp the clock to the horizon even when Stop ended the run
// early, so callers measuring "when did the run end" saw the horizon
// instead of the stop time.
func TestRunReturnsStopTime(t *testing.T) {
	s := New(1)
	var at2 Time
	s.After(1*Second, func() {})
	s.After(2*Second, func() {
		at2 = s.Now()
		s.Stop()
	})
	s.After(3*Second, func() {})
	end := s.Run(10 * Second)
	if end != 2*Second || at2 != 2*Second {
		t.Fatalf("Run after Stop returned %v, want stop time %v", end, 2*Second)
	}
	if s.Now() != 2*Second {
		t.Fatalf("Now() = %v after stopped run, want %v", s.Now(), 2*Second)
	}
	// The event at 3s is still pending; resuming executes it and then the
	// horizon clamp applies as usual.
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d after stop, want 1", s.Pending())
	}
	if end := s.Run(10 * Second); end != 10*Second {
		t.Fatalf("resumed Run returned %v, want horizon %v", end, 10*Second)
	}
}

// Timer.Stop used to only mark the event dead, leaving the closure (and
// anything it captured) referenced by the heap until its timestamp popped,
// and Pending was an O(n) scan over the corpses.
func TestTimerStopReleasesEvent(t *testing.T) {
	s := New(1)
	payload := make([]byte, 1<<20)
	tm := s.Schedule(1000*Second, func() { _ = payload })
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false for a pending timer")
	}
	// The event must be gone from the queue immediately, not at pop time...
	if len(s.queue) != 0 {
		t.Fatalf("queue holds %d events after Stop, want 0", len(s.queue))
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after Stop, want 0", got)
	}
	// ...and recycled into the pool with its closure cleared, so the
	// captured payload is unreachable from the Sim.
	if len(s.free) != 1 {
		t.Fatalf("free list holds %d events, want 1", len(s.free))
	}
	if s.free[0].fn != nil {
		t.Fatal("released event still references its closure")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	if tm.Active() {
		t.Fatal("Active() = true after Stop")
	}
}

// A stale Timer handle whose event was recycled for an unrelated schedule
// must not cancel the new event.
func TestStaleTimerHandleIsInert(t *testing.T) {
	s := New(1)
	tm := s.Schedule(1*Second, func() {})
	s.Run(2 * Second) // fires; event returns to the pool
	ran := false
	s.After(1*Second, func() { ran = true }) // reuses the pooled event
	if tm.Stop() {
		t.Fatal("stale handle Stop() = true")
	}
	if tm.Active() {
		t.Fatal("stale handle Active() = true")
	}
	s.Run(5 * Second)
	if !ran {
		t.Fatal("recycled event was cancelled through a stale handle")
	}
}

// Steady-state scheduling through the handle-free API must not allocate:
// events come from the pool and go back to it.
func TestAfterDoesNotAllocate(t *testing.T) {
	s := New(1)
	var fn func()
	n := 0
	fn = func() {
		if n++; n < 100 {
			s.After(Millisecond, fn)
		}
	}
	// Warm the pool and the heap.
	s.After(Millisecond, fn)
	s.Run(0)
	allocs := testing.AllocsPerRun(100, func() {
		n = 0
		s.After(Millisecond, fn)
		s.Run(0)
	})
	if allocs > 0 {
		t.Fatalf("handle-free schedule/run loop allocates %.1f objects per run, want 0", allocs)
	}
}

func TestPendingCountsStoppedCorrectly(t *testing.T) {
	s := New(1)
	var timers []*Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, s.Schedule(Time(i+1)*Second, func() {}))
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("Pending() = %d, want 10", got)
	}
	for _, tm := range timers[:5] {
		tm.Stop()
	}
	if got := s.Pending(); got != 5 {
		t.Fatalf("Pending() = %d after stopping 5, want 5", got)
	}
	s.Run(0)
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
	if s.Executed != 5 {
		t.Fatalf("Executed = %d, want 5", s.Executed)
	}
}
