package sim

// Conservative-lookahead parallel scheduler.
//
// The classic engine in sim.go executes one global (time, seq)-ordered event
// stream. That is exact but single-threaded, and at ISP scale the event
// heap becomes the bottleneck. This file adds a deterministic parallel mode
// built on the standard conservative-PDES argument:
//
//   - The simulation is partitioned into SHARDS (in netsim: groups of
//     nodes). Each shard's events only touch shard-local state.
//   - Shards interact only through cross-shard sends (in netsim: packet
//     arrivals over links) whose latency is at least the LOOKAHEAD (the
//     minimum link propagation delay).
//   - Therefore all events inside one lookahead window [t0, t0+L) are
//     causally independent across shards and may run concurrently; an event
//     can only influence another shard at or after the window end.
//
// Determinism does not come for free from the safety argument: the classic
// engine breaks timestamp ties by insertion sequence, and insertion order
// during concurrent execution is scheduling-dependent. The parallel engine
// therefore never assigns sequence numbers concurrently. Events created
// during a window are either
//
//   - shard-local and inside the window: executed by the same shard in
//     (time, local seq) order, where local seqs start above every
//     already-assigned root seq (children run after same-time window
//     events, exactly like the classic engine), or
//   - staged: buffered per shard, and merged into the root heap at the
//     window BARRIER in the deterministic order (time, parent time, shard,
//     stage order), at which point they receive their root seqs.
//
// The merged order is independent of the worker count and of goroutine
// scheduling, so a parallel run is byte-identical to the same run with one
// worker. It matches the classic sequential engine whenever no two shards
// stage same-timestamp events for the same instant from same-timestamp
// parents — ties the lookahead makes impossible for netsim arrivals on
// distinct links with distinct delays; DESIGN.md §11 spells out the
// argument and the tie-break discipline.
//
// Events scheduled on the root Sim (no shard view) remain global: they act
// as barriers, executing alone with every shard synchronized, so unsharded
// subsystems (the fleet correlator, the management network) remain exactly
// sequential even when the dataplane is sharded.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// parRuntime is the root Sim's parallel-mode state.
type parRuntime struct {
	workers   int
	lookahead Time
	inWindow  bool // set only while shard workers execute a window
	stopReq   atomic.Bool
}

// SetParallel enables the conservative-lookahead parallel scheduler with
// the given worker count and lookahead window. The lookahead must be a
// lower bound on every cross-shard latency (for netsim: the minimum link
// propagation delay between nodes of different shards). workers <= 1 still
// uses the windowed engine — useful as the determinism reference: any
// worker count produces byte-identical runs.
func (s *Sim) SetParallel(workers int, lookahead Time) {
	if s.root != s {
		panic("sim: SetParallel on a shard view")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	s.par = &parRuntime{workers: workers, lookahead: lookahead}
}

// Workers reports the configured worker count (1 when parallel mode is off).
func (s *Sim) Workers() int {
	if s.root.par == nil {
		return 1
	}
	return s.root.par.workers
}

// Shards creates (or extends to) n shard views and returns them. A shard
// view is a *Sim restricted to one partition: it has its own clock and its
// own derived RNG stream, and everything scheduled through it runs on that
// shard. Components of one shard must only touch state of that shard.
func (s *Sim) Shards(n int) []*Sim {
	if s.root != s {
		panic("sim: Shards on a shard view")
	}
	for len(s.views) < n {
		i := len(s.views)
		v := &Sim{
			seed:  s.seed,
			shard: int32(i),
			root:  s,
			now:   s.now,
		}
		v.rng = s.DeriveRand(fmt.Sprintf("sim/shard/%d", i))
		s.views = append(s.views, v)
	}
	return s.views[:n]
}

// Shard returns view i, creating views as needed.
func (s *Sim) Shard(i int) *Sim { return s.Shards(i + 1)[i] }

// CrossAt schedules fn at absolute time at on another shard's view. During
// window execution the target time must lie at or beyond the window end —
// the conservative-lookahead contract; violating it panics, because it
// means the configured lookahead is not actually a lower bound on the
// cross-shard latency. Outside window execution it is dst.At.
func (s *Sim) CrossAt(dst *Sim, at Time, fn func()) {
	r := s.root
	if r.par == nil || !r.par.inWindow || s == r {
		dst.At(at, fn)
		return
	}
	if at < s.wend {
		panic(fmt.Sprintf("sim: cross-shard event at %v inside the lookahead window ending %v", at, s.wend))
	}
	ev := s.alloc(at, fn)
	ev.shard = dst.shard
	ev.parentAt = s.now
	ev.index = indexStaged
	ev.owner = s
	s.stage = append(s.stage, ev)
	s.live++
}

// scheduleSharded is the scheduling path for shard views, and for the root
// heap while a parallel window is in flight (which is an error).
func (s *Sim) scheduleSharded(at Time, fn func()) *event {
	r := s.root
	if r.par == nil || !r.par.inWindow {
		// Setup phase or between windows: single-threaded, straight onto
		// the root heap, tagged with the view's shard.
		if at < r.now {
			panic(fmt.Sprintf("sim: schedule in the past: at=%v now=%v", at, r.now))
		}
		ev := s.alloc(at, fn)
		ev.seq = r.seq
		r.seq++
		ev.owner = r
		heapPush(&r.queue, ev)
		r.live++
		return ev
	}
	if s == r {
		panic("sim: schedule on the root Sim during a parallel window; global events must be scheduled between windows or through a shard view")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule in the past: at=%v now=%v (shard %d)", at, s.now, s.shard))
	}
	if at < s.wend {
		// Intra-window, same shard: executed later this window. Local
		// seqs start at the frozen root seq (see runParallel), so children
		// sort after same-time events that were scheduled before the
		// window — the classic insertion-order rule.
		ev := s.alloc(at, fn)
		ev.seq = s.lseq
		s.lseq++
		ev.owner = s
		heapPush(&s.queue, ev)
		s.live++
		return ev
	}
	// Beyond the window: stage for the deterministic barrier merge.
	ev := s.alloc(at, fn)
	ev.parentAt = s.now
	ev.index = indexStaged
	ev.owner = s
	s.stage = append(s.stage, ev)
	s.live++
	return ev
}

// runParallel is Run for the windowed engine.
func (s *Sim) runParallel(horizon Time) Time {
	p := s.par
	p.stopReq.Store(false)
	for {
		if p.stopReq.Load() {
			return s.now
		}
		// Drop cancelled events surfacing at the head.
		for len(s.queue) > 0 && s.queue[0].dead {
			ev := heapPop(&s.queue)
			s.live--
			s.release(ev)
		}
		if len(s.queue) == 0 {
			break
		}
		head := s.queue[0]
		if horizon > 0 && head.at > horizon {
			s.now = horizon
			return s.now
		}
		if head.shard < 0 {
			// Global event: a barrier. Every shard has drained up to at
			// least this timestamp, so running it alone is exactly the
			// classic sequential semantics.
			heapPop(&s.queue)
			s.now = head.at
			s.live--
			s.Executed++
			fn := head.fn
			s.release(head)
			fn()
			continue
		}

		// Assemble the window batch: consecutive sharded events from the
		// heap head, bounded by the lookahead, the horizon, and the first
		// global event (which shrinks the window for newly created
		// children; already-popped events at that timestamp precede it by
		// seq and legitimately still run).
		t0 := head.at
		wend := t0 + p.lookahead
		if horizon > 0 && wend > horizon+1 {
			wend = horizon + 1
		}
		var batchTail Time
		nbatch := 0
		for len(s.queue) > 0 {
			top := s.queue[0]
			if top.dead {
				heapPop(&s.queue)
				s.live--
				s.release(top)
				continue
			}
			if top.shard < 0 {
				if top.at < wend {
					wend = top.at
				}
				break
			}
			if top.at >= wend {
				break
			}
			heapPop(&s.queue)
			v := s.views[top.shard]
			v.batch = append(v.batch, top)
			batchTail = top.at
			nbatch++
		}
		if nbatch == 0 {
			// Can only happen via dead-event draining; retry.
			continue
		}
		s.live -= nbatch

		// Execute the window: every shard with work runs its batch (plus
		// any children it creates inside the window) in (time, seq)
		// order. Shards are spread over the workers round-robin.
		var active []*Sim
		for _, v := range s.views {
			if len(v.batch) > 0 {
				v.wend = wend
				v.lseq = s.seq
				active = append(active, v)
			}
		}
		p.inWindow = true
		nw := p.workers
		if nw > len(active) {
			nw = len(active)
		}
		if nw <= 1 {
			for _, v := range active {
				v.execWindow()
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(active); i += nw {
						active[i].execWindow()
					}
				}(w)
			}
			wg.Wait()
		}
		p.inWindow = false

		// Barrier: merge staged events into the root heap in the
		// deterministic order (time, parent time, shard, stage order) and
		// only now assign their root seqs.
		var staged []*event
		for _, v := range active {
			staged = append(staged, v.stage...)
			v.stage = v.stage[:0]
			v.batch = v.batch[:0]
			s.Executed += v.executed
			v.executed = 0
		}
		sort.SliceStable(staged, func(i, j int) bool {
			a, b := staged[i], staged[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.parentAt != b.parentAt {
				return a.parentAt < b.parentAt
			}
			return a.owner.shard < b.owner.shard
		})
		for _, ev := range staged {
			if ev.dead {
				// Stop already dropped the owner's live count.
				s.release(ev)
				continue
			}
			ev.owner.live--
			ev.seq = s.seq
			s.seq++
			ev.owner = s
			ev.index = indexFree
			heapPush(&s.queue, ev)
			s.live++
		}
		s.now = batchTail
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return s.now
}

// execWindow runs one shard's share of a window: the batch events popped
// from the root heap, interleaved with the shard-local children they
// schedule, in (time, seq) order with batch events winning timestamp ties
// (they were inserted first).
func (v *Sim) execWindow() {
	bi := 0
	for {
		var ev *event
		fromBatch := false
		if bi < len(v.batch) {
			ev = v.batch[bi]
			fromBatch = true
		}
		if len(v.queue) > 0 {
			top := v.queue[0]
			// Batch events carry root seqs below every local seq, so at
			// equal timestamps the batch event runs first.
			if ev == nil || top.at < ev.at {
				ev = top
				fromBatch = false
			}
		}
		if ev == nil {
			break
		}
		if fromBatch {
			bi++
		} else {
			heapPop(&v.queue)
			v.live--
		}
		if ev.dead {
			v.release(ev)
			continue
		}
		v.now = ev.at
		v.executed++
		fn := ev.fn
		v.release(ev)
		fn()
	}
	if len(v.queue) > 0 {
		panic("sim: shard window ended with unexecuted local events")
	}
}
