package blink

import (
	"math/rand"
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/tcp"
	"fancy/internal/traffic"
)

// blinkBed: src — up — down — dst, Blink watching the up switch's ingress,
// failures injected on the up→down link.
type blinkBed struct {
	s    *sim.Sim
	src  *netsim.Host
	dst  *netsim.Host
	up   *netsim.Switch
	link *netsim.Link
	det  *Detector
	drv  *traffic.Driver
}

func newBed(t *testing.T, seed int64, cfg Config) *blinkBed {
	t.Helper()
	s := sim.New(seed)
	b := &blinkBed{s: s}
	b.src = netsim.NewHost(s, "src")
	b.dst = netsim.NewHost(s, "dst")
	b.up = netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	lc := netsim.LinkConfig{Delay: 5 * sim.Millisecond, RateBps: 10e9}
	netsim.Connect(s, b.src, 0, b.up, 0, lc)
	b.link = netsim.Connect(s, b.up, 1, down, 0, lc)
	netsim.Connect(s, down, 1, b.dst, 0, lc)
	b.up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	b.up.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	b.src.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	b.dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	b.det = New(s, 100, cfg)
	b.up.AddIngressHook(b.det)
	b.drv = traffic.NewDriver(s, b.src, b.dst, tcp.Config{})
	return b
}

func (b *blinkBed) flows(n int, duration sim.Time) {
	rng := rand.New(rand.NewSource(9))
	// Long-lived flows: each carries 100 kbps for the whole experiment so
	// the monitored set stays stable.
	var specs []traffic.FlowSpec
	for i := 0; i < n; i++ {
		specs = append(specs, traffic.FlowSpec{
			Entry: 100, Start: sim.Time(rng.Int63n(int64(200 * sim.Millisecond))),
			Bytes: int64(100e3 / 8 * duration.Seconds()), RateBps: 100e3,
		})
	}
	b.drv.Schedule(specs)
}

func TestBlinkDetectsFullLinkFailure(t *testing.T) {
	b := newBed(t, 1, Config{MaxFlows: 64})
	b.flows(40, 10*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, 2*sim.Second, 1.0, 100))
	b.s.Run(10 * sim.Second)

	if !b.det.Detected() {
		t.Fatal("Blink missed a total failure affecting all flows")
	}
	lat := b.det.FailureAt - 2*sim.Second
	// All flows hit their 200 ms RTO and retransmit within the 800 ms
	// window: detection within ≈1 s, as designed.
	if lat > 1500*sim.Millisecond {
		t.Errorf("detection latency = %v, want ≲1s", lat)
	}
	if b.det.MonitoredFlows == 0 {
		t.Error("no flows monitored")
	}
}

func TestBlinkMissesMinorityGrayFailure(t *testing.T) {
	// §2.3: "Blink fundamentally cannot detect a gray failure that does
	// not affect the majority of the flows crossing a link."
	b := newBed(t, 2, Config{MaxFlows: 64})
	b.flows(40, 10*sim.Second)
	// Blackhole 20% of the flows: a severe gray failure, well below the
	// majority vote.
	b.link.AB.SetFailure(netsim.FailFlows(5, 2*sim.Second, 0.20, 1.0))
	b.s.Run(10 * sim.Second)

	if b.det.Detected() {
		t.Fatalf("Blink claimed detection at %v with only 20%% of flows affected", b.det.FailureAt)
	}
	if b.det.Retransmits == 0 {
		t.Error("affected flows should still retransmit (just not a majority)")
	}
}

func TestBlinkNoFalsePositivesOnCleanTraffic(t *testing.T) {
	b := newBed(t, 3, Config{MaxFlows: 64})
	b.flows(40, 6*sim.Second)
	b.s.Run(6 * sim.Second)
	if b.det.Detected() {
		t.Fatal("Blink fired without any failure")
	}
}

func TestBlinkFlowEviction(t *testing.T) {
	b := newBed(t, 4, Config{MaxFlows: 4, EvictAfter: 500 * sim.Millisecond})
	// First wave of 4 short flows, then a second wave after they finish.
	rng := rand.New(rand.NewSource(5))
	_ = rng
	var specs []traffic.FlowSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, traffic.FlowSpec{Entry: 100, Start: 0, Bytes: 20_000, RateBps: 200e3})
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, traffic.FlowSpec{Entry: 100, Start: 3 * sim.Second, Bytes: 20_000, RateBps: 200e3})
	}
	b.drv.Schedule(specs)
	b.s.Run(6 * sim.Second)
	// The second wave must have been admitted after the first went idle.
	if len(b.det.flows) == 0 {
		t.Fatal("no flows monitored after eviction cycle")
	}
	for id, st := range b.det.flows {
		if st.lastSeen < 3*sim.Second {
			t.Errorf("flow %d from the first wave still monitored after eviction", id)
		}
	}
}

func TestBlinkIgnoresOtherPrefixesAndACKs(t *testing.T) {
	b := newBed(t, 6, Config{})
	// Traffic on a different prefix only.
	var specs []traffic.FlowSpec
	for i := 0; i < 10; i++ {
		specs = append(specs, traffic.FlowSpec{Entry: 200, Start: 0, Bytes: 50_000, RateBps: 200e3})
	}
	b.drv.Schedule(specs)
	b.s.Run(4 * sim.Second)
	if b.det.MonitoredFlows != 0 {
		t.Errorf("monitored %d flows of an unmonitored prefix", b.det.MonitoredFlows)
	}
}

func TestFlowSelectionFraction(t *testing.T) {
	// The per-flow failure model must select approximately the requested
	// fraction of flows, deterministically.
	selected := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if flowSelectedForTest(netsim.FlowID(i), 0.2) {
			selected++
		}
	}
	frac := float64(selected) / n
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("selected fraction = %.3f, want ≈0.20", frac)
	}
}

// flowSelectedForTest mirrors netsim's internal selection to validate the
// public behaviour through Failure.Drop.
func flowSelectedForTest(flow netsim.FlowID, fraction float64) bool {
	f := netsim.FailFlows(1, 0, fraction, 1.0)
	return f.Drop(&netsim.Packet{Flow: flow, Proto: netsim.ProtoTCP}, 1)
}
