// Package blink implements a simplified Blink [Holterbach et al., NSDI'19]
// failure detector, the in-switch baseline the FANcY paper discusses in
// §2.3. Blink selects a small number of TCP flows per prefix (64 in the
// paper) and infers a failure when the majority of them retransmit within
// an 800 ms window.
//
// Blink targets failures that affect ALL flows crossing a link. The FANcY
// paper's §2.3 argument — reproduced by this package's tests and the
// ablation experiment — is that Blink fundamentally cannot detect gray
// failures hitting a minority of the monitored flows: with fewer than a
// majority retransmitting, the vote never fires, and monitoring more flows
// is impractical on switch hardware.
package blink

import (
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// Config parameterizes the detector.
type Config struct {
	// MaxFlows is the number of flows monitored per prefix (paper: 64).
	MaxFlows int
	// Window is the retransmission vote window (paper: 800 ms).
	Window sim.Time
	// Majority is the fraction of monitored flows that must retransmit
	// within Window to infer a failure (paper: majority, 0.5).
	Majority float64
	// EvictAfter replaces flows idle longer than this, keeping the
	// monitored set populated with active flows.
	EvictAfter sim.Time
}

func (c *Config) fill() {
	if c.MaxFlows == 0 {
		c.MaxFlows = 64
	}
	if c.Window == 0 {
		c.Window = 800 * sim.Millisecond
	}
	if c.Majority == 0 {
		c.Majority = 0.5
	}
	if c.EvictAfter == 0 {
		c.EvictAfter = 2 * sim.Second
	}
}

// flowState tracks one monitored flow.
type flowState struct {
	maxSeq      int64 // highest sequence end observed
	lastSeen    sim.Time
	lastRetrans sim.Time
}

// Detector monitors one prefix's flows through a switch ingress. Attach
// with sw.AddIngressHook.
type Detector struct {
	cfg   Config
	s     *sim.Sim
	entry netsim.EntryID

	flows map[netsim.FlowID]*flowState

	// FailureAt is the first time the majority vote fired (0 = never).
	FailureAt sim.Time
	// Votes counts how many windows fired.
	Votes uint64

	MonitoredFlows int
	Retransmits    uint64
}

// New creates a Blink detector for one prefix.
func New(s *sim.Sim, entry netsim.EntryID, cfg Config) *Detector {
	cfg.fill()
	return &Detector{cfg: cfg, s: s, entry: entry, flows: make(map[netsim.FlowID]*flowState)}
}

// OnIngress implements netsim.IngressHook: it observes forward TCP data
// packets of the monitored prefix.
func (d *Detector) OnIngress(pkt *netsim.Packet, port int) bool {
	if pkt.Proto != netsim.ProtoTCP || pkt.Entry != d.entry || pkt.Len == 0 {
		return false
	}
	now := d.s.Now()
	st, ok := d.flows[pkt.Flow]
	if !ok {
		if len(d.flows) >= d.cfg.MaxFlows {
			if !d.evictIdle(now) {
				return false // monitored set full of active flows
			}
		}
		st = &flowState{}
		d.flows[pkt.Flow] = st
		if len(d.flows) > d.MonitoredFlows {
			d.MonitoredFlows = len(d.flows)
		}
	}
	st.lastSeen = now
	end := pkt.Seq + int64(pkt.Len)
	if end <= st.maxSeq {
		// Sequence space already seen: a retransmission.
		st.lastRetrans = now
		d.Retransmits++
		d.vote(now)
	} else {
		st.maxSeq = end
	}
	return false
}

func (d *Detector) evictIdle(now sim.Time) bool {
	for id, st := range d.flows {
		if now-st.lastSeen > d.cfg.EvictAfter {
			delete(d.flows, id)
			return true
		}
	}
	return false
}

// vote checks the majority condition over the sliding window.
func (d *Detector) vote(now sim.Time) {
	if len(d.flows) == 0 {
		return
	}
	retrans := 0
	for _, st := range d.flows {
		if st.lastRetrans > 0 && now-st.lastRetrans <= d.cfg.Window {
			retrans++
		}
	}
	if float64(retrans) > d.cfg.Majority*float64(len(d.flows)) {
		d.Votes++
		if d.FailureAt == 0 {
			d.FailureAt = now
		}
	}
}

// Detected reports whether Blink inferred a failure.
func (d *Detector) Detected() bool { return d.FailureAt != 0 }
