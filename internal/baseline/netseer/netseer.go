// Package netseer models the NetSeer baseline [Zhou et al., SIGCOMM'20]
// inter-switch loss-detection protocol, whose packet buffers are overridden
// before NACKs arrive at ISP traffic volumes and link delays — the analysis
// behind Figure 2 of the FANcY paper.
//
// In NetSeer, each upstream switch keeps a signature of every in-flight
// packet in a ring buffer; the downstream NACKs gaps it observes. A
// signature can only be matched while it is still in the buffer, so the
// buffer must hold at least a round trip's worth of packets. The package
// provides both the analytical memory requirement (Figure 2's curves) and a
// small executable ring-buffer simulation confirming the override behaviour.
package netseer

// RecordBytes is the per-packet signature record NetSeer buffers: flow key,
// sequence information and event metadata.
const RecordBytes = 16

// AvailableMemBytes is the in-switch application memory the paper compares
// against (§2.3: "memory available to in-switch applications tends to be in
// the order of few MBs"; 12–15 MB per pipeline shared by all stages and
// applications).
const AvailableMemBytes = 15e6

// Requirement is NetSeer's buffer need for one configuration (one point of
// Figure 2).
type Requirement struct {
	Ports       int
	PortRateBps float64
	LatencySecs float64 // one-way inter-switch latency
	PacketsRTT  float64 // packets in flight during one round trip
	MemoryBytes float64
	Operational bool // fits in AvailableMemBytes
	AvgPktBytes float64
}

// AvgPacketBytes is the mean packet size used for the in-flight packet rate
// (Internet mix; smaller packets would only increase the requirement).
const AvgPacketBytes = 800

// Analyze computes the buffer memory a NetSeer switch needs so signatures
// survive until a NACK can arrive: ports × pps × 2·latency × record size.
func Analyze(ports int, portRateBps, latencySecs float64) Requirement {
	pps := portRateBps / (AvgPacketBytes * 8) * float64(ports)
	inFlight := pps * 2 * latencySecs
	mem := inFlight * RecordBytes
	return Requirement{
		Ports: ports, PortRateBps: portRateBps, LatencySecs: latencySecs,
		PacketsRTT: inFlight, MemoryBytes: mem,
		Operational: mem <= AvailableMemBytes,
		AvgPktBytes: AvgPacketBytes,
	}
}

// Buffer is an executable model of NetSeer's signature ring buffer. It
// demonstrates the override failure mode: when the buffer is smaller than
// the bandwidth-delay product, NACKed packets have already been evicted and
// the loss cannot be attributed to an entry.
type Buffer struct {
	ring []uint64
	pos  int
	full bool

	Stored    uint64
	Evictions uint64
	Hits      uint64 // NACK lookups that found the signature
	Misses    uint64 // NACK lookups after eviction — NetSeer not operational
}

// NewBuffer allocates a ring buffer that can hold n signatures.
func NewBuffer(n int) *Buffer {
	if n < 1 {
		n = 1
	}
	return &Buffer{ring: make([]uint64, n)}
}

// Store records a sent packet's signature, evicting the oldest when full.
func (b *Buffer) Store(sig uint64) {
	if b.full {
		b.Evictions++
	}
	b.ring[b.pos] = sig
	b.pos++
	if b.pos == len(b.ring) {
		b.pos = 0
		b.full = true
	}
	b.Stored++
}

// Lookup processes a NACK for sig: it reports whether the signature was
// still buffered (and the loss therefore attributable).
func (b *Buffer) Lookup(sig uint64) bool {
	limit := b.pos
	if b.full {
		limit = len(b.ring)
	}
	for i := 0; i < limit; i++ {
		if b.ring[i] == sig {
			b.Hits++
			return true
		}
	}
	b.Misses++
	return false
}

// Capacity reports the buffer's signature slots.
func (b *Buffer) Capacity() int { return len(b.ring) }
