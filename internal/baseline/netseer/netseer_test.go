package netseer

import (
	"math/rand"
	"testing"
)

func TestAnalyzeReproducesFigure2Shape(t *testing.T) {
	// Figure 2: hundreds of MB at millisecond latencies on 100 Gbps × 64.
	r := Analyze(64, 100e9, 0.010)
	if r.MemoryBytes < 50e6 {
		t.Errorf("64×100G @10ms needs %.0f MB, want hundreds of MB", r.MemoryBytes/1e6)
	}
	if r.Operational {
		t.Error("64×100G @10ms should not be operational (needs ≫15 MB)")
	}
	// Memory scales linearly with rate and latency.
	r2 := Analyze(64, 200e9, 0.010)
	r4 := Analyze(64, 400e9, 0.010)
	if !approx(r2.MemoryBytes/r.MemoryBytes, 2, 0.01) || !approx(r4.MemoryBytes/r.MemoryBytes, 4, 0.01) {
		t.Error("memory not linear in port rate")
	}
	rLong := Analyze(64, 100e9, 0.100)
	if !approx(rLong.MemoryBytes/r.MemoryBytes, 10, 0.01) {
		t.Error("memory not linear in latency")
	}
}

func TestAnalyzeOperationalAtDataCenterScale(t *testing.T) {
	// NetSeer is designed for data centers: at 100 µs latencies it fits.
	r := Analyze(64, 100e9, 0.0001)
	if !r.Operational {
		t.Errorf("64×100G @100µs needs %.1f MB; should be operational", r.MemoryBytes/1e6)
	}
}

func TestBufferStoresAndFinds(t *testing.T) {
	b := NewBuffer(100)
	for i := uint64(0); i < 50; i++ {
		b.Store(i)
	}
	if !b.Lookup(25) {
		t.Error("recent signature not found")
	}
	if b.Lookup(999) {
		t.Error("never-stored signature found")
	}
	if b.Evictions != 0 {
		t.Errorf("evictions = %d before wrap", b.Evictions)
	}
}

func TestBufferOverrideLosesSignatures(t *testing.T) {
	// The Figure 2 failure mode: the buffer wraps before the NACK
	// arrives, so the lost packet's signature is gone.
	b := NewBuffer(64)
	for i := uint64(0); i < 1000; i++ {
		b.Store(i)
	}
	if b.Lookup(0) {
		t.Error("overridden signature still found")
	}
	if !b.Lookup(999) {
		t.Error("latest signature missing")
	}
	if b.Evictions != 1000-64 {
		t.Errorf("evictions = %d, want %d", b.Evictions, 1000-64)
	}
	if b.Misses != 1 || b.Hits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", b.Hits, b.Misses)
	}
}

func TestBufferSimulatedRTTOverride(t *testing.T) {
	// Simulate the analytical model: packets arrive at a fixed rate, the
	// NACK for a loss arrives one RTT later. With a buffer smaller than
	// rate×RTT the hit rate collapses; with a larger buffer it is 100%.
	const pktPerRTT = 10_000
	rng := rand.New(rand.NewSource(1))
	run := func(capacity int) float64 {
		b := NewBuffer(capacity)
		var pending []uint64 // losses awaiting their NACK
		hits, total := 0, 0
		for i := uint64(1); i < 50_000; i++ {
			b.Store(i)
			if rng.Float64() < 0.001 {
				pending = append(pending, i)
			}
			// NACKs arrive one RTT after the loss.
			for len(pending) > 0 && pending[0]+pktPerRTT < i {
				total++
				if b.Lookup(pending[0]) {
					hits++
				}
				pending = pending[1:]
			}
		}
		if total == 0 {
			return 1
		}
		return float64(hits) / float64(total)
	}
	if hr := run(pktPerRTT * 2); hr < 0.99 {
		t.Errorf("well-provisioned buffer hit rate = %.2f, want ≈1", hr)
	}
	if hr := run(pktPerRTT / 10); hr > 0.2 {
		t.Errorf("under-provisioned buffer hit rate = %.2f, want ≈0", hr)
	}
}

func approx(got, want, tol float64) bool {
	return got > want*(1-tol) && got < want*(1+tol)
}

func BenchmarkBufferStore(b *testing.B) {
	buf := NewBuffer(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Store(uint64(i))
	}
}
