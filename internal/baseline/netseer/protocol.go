package netseer

// An executable NetSeer inter-switch protocol on the netsim substrate,
// confirming the Figure 2 analysis "by experiments" as the paper did in
// ns-3: the upstream switch buffers a signature of every packet it sends;
// the downstream detects sequence gaps and NACKs the missing packets; the
// upstream attributes a NACKed loss only if the signature is still in its
// buffer. At ISP bandwidth-delay products the buffer wraps before NACKs
// arrive and losses become unattributable ("NetSeer is not operational").

import (
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// Protocol runs NetSeer between one upstream egress port and one
// downstream ingress port.
type Protocol struct {
	s     *sim.Sim
	buf   *Buffer
	delay sim.Time // one-way latency for the NACK path

	nextSeq uint64 // per-link sequence stamped at the upstream
	expect  uint64 // next sequence expected at the downstream
	started bool

	// Attributed counts losses whose signature was still buffered when
	// the NACK arrived — the cases NetSeer can localize. Unattributable
	// counts NACKs that arrived after eviction.
	Attributed     uint64
	Unattributable uint64

	// LossByEntry localizes attributed losses, NetSeer's output.
	LossByEntry map[netsim.EntryID]uint64

	entryOf map[uint64]netsim.EntryID // signature → entry while buffered
}

// NewProtocol builds a NetSeer instance whose upstream buffer holds
// bufferPackets signatures, with the given one-way NACK latency.
func NewProtocol(s *sim.Sim, bufferPackets int, delay sim.Time) *Protocol {
	return &Protocol{
		s: s, buf: NewBuffer(bufferPackets), delay: delay,
		LossByEntry: make(map[netsim.EntryID]uint64),
		entryOf:     make(map[uint64]netsim.EntryID),
	}
}

// OnEgress implements netsim.EgressHook for the upstream switch: stamp and
// buffer every data packet.
func (p *Protocol) OnEgress(pkt *netsim.Packet, port int) {
	if pkt.Proto == netsim.ProtoFancy || pkt.Entry == netsim.InvalidEntry {
		return
	}
	p.nextSeq++
	seq := p.nextSeq
	pkt.ProbeWindow = int64(seq) // reuse the probe stamp as the NetSeer seq
	p.buf.Store(seq)
	p.entryOf[seq] = pkt.Entry
	// Bound the side map to the buffer's reach (the ring itself stores
	// only the signature; the entry map mirrors its eviction).
	if evicted := int64(seq) - int64(p.buf.Capacity()); evicted > 0 {
		delete(p.entryOf, uint64(evicted))
	}
}

// OnIngress implements netsim.IngressHook for the downstream switch:
// detect gaps and send NACKs after one propagation delay.
func (p *Protocol) OnIngress(pkt *netsim.Packet, port int) bool {
	if pkt.ProbeWindow == 0 {
		return false
	}
	seq := uint64(pkt.ProbeWindow)
	pkt.ProbeWindow = 0
	if !p.started {
		p.started = true
		p.expect = seq
	}
	if seq > p.expect {
		// Packets expect..seq-1 were lost: NACK each.
		for missing := p.expect; missing < seq; missing++ {
			m := missing
			p.s.Schedule(p.delay, func() { p.onNACK(m) })
		}
	}
	if seq >= p.expect {
		p.expect = seq + 1
	}
	return false
}

// onNACK processes a NACK arriving back at the upstream.
func (p *Protocol) onNACK(seq uint64) {
	if p.buf.Lookup(seq) {
		p.Attributed++
		if e, ok := p.entryOf[seq]; ok {
			p.LossByEntry[e]++
		}
		return
	}
	p.Unattributable++
}

// Operational reports whether NetSeer could attribute at least the given
// fraction of the NACKed losses.
func (p *Protocol) Operational(minFraction float64) bool {
	total := p.Attributed + p.Unattributable
	if total == 0 {
		return true
	}
	return float64(p.Attributed)/float64(total) >= minFraction
}

// AttributedFraction reports the share of NACKed losses still buffered.
func (p *Protocol) AttributedFraction() float64 {
	total := p.Attributed + p.Unattributable
	if total == 0 {
		return 1
	}
	return float64(p.Attributed) / float64(total)
}
