package netseer

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// protoBed wires the protocol onto a two-switch link.
type protoBed struct {
	s    *sim.Sim
	src  *netsim.Host
	link *netsim.Link
	p    *Protocol
}

func newProtoBed(t *testing.T, bufferPackets int, delay sim.Time) *protoBed {
	t.Helper()
	s := sim.New(1)
	b := &protoBed{s: s}
	b.src = netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	lc := netsim.LinkConfig{Delay: delay, RateBps: 10e9}
	netsim.Connect(s, b.src, 0, up, 0, lc)
	b.link = netsim.Connect(s, up, 1, down, 0, lc)
	netsim.Connect(s, down, 1, dst, 0, lc)
	up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	b.p = NewProtocol(s, bufferPackets, delay)
	up.AddEgressHook(b.p)
	up.RefreshEgressHooks()
	down.AddIngressHook(b.p)
	return b
}

func (b *protoBed) cbr(entry netsim.EntryID, pps int, stop sim.Time) {
	gap := sim.Second / sim.Time(pps)
	var tick func()
	tick = func() {
		if b.s.Now() >= stop {
			return
		}
		b.src.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Proto: netsim.ProtoUDP, Size: 500})
		b.s.Schedule(gap, tick)
	}
	b.s.Schedule(0, tick)
}

func TestProtocolAttributesAtDataCenterBDP(t *testing.T) {
	// 100 µs latency, 2000 pps → ≈0.4 packets per RTT: a 1000-packet
	// buffer easily outlives the NACKs, so every loss is attributed.
	b := newProtoBed(t, 1000, 100*sim.Microsecond)
	b.cbr(7, 2000, 2*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, sim.Second, 0.1, 7))
	b.s.Run(3 * sim.Second)

	if b.p.Attributed == 0 {
		t.Fatal("no losses attributed")
	}
	if !b.p.Operational(0.99) {
		t.Fatalf("attributed fraction = %.2f at DC latency, want ≈1", b.p.AttributedFraction())
	}
	if b.p.LossByEntry[7] == 0 {
		t.Error("losses not localized to the failing entry")
	}
}

func TestProtocolNotOperationalAtISPBDP(t *testing.T) {
	// 10 ms latency, 2000 pps → 40 packets per RTT, but the buffer holds
	// only 8: signatures are overwritten long before NACKs arrive — the
	// Figure 2 regime ("NetSeer is not operational").
	b := newProtoBed(t, 8, 10*sim.Millisecond)
	b.cbr(7, 2000, 2*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, sim.Second, 0.1, 7))
	b.s.Run(3 * sim.Second)

	if b.p.Unattributable == 0 {
		t.Fatal("no unattributable losses despite a wrapped buffer")
	}
	if b.p.Operational(0.5) {
		t.Fatalf("attributed fraction = %.2f with buffer ≪ BDP, want ≈0", b.p.AttributedFraction())
	}
}

func TestProtocolNoLossNoNACKs(t *testing.T) {
	b := newProtoBed(t, 1000, sim.Millisecond)
	b.cbr(7, 1000, sim.Second)
	b.s.Run(2 * sim.Second)
	if b.p.Attributed != 0 || b.p.Unattributable != 0 {
		t.Fatalf("NACKs on a lossless link: %d/%d", b.p.Attributed, b.p.Unattributable)
	}
}

func TestProtocolMatchesAnalyticalThreshold(t *testing.T) {
	// The executable protocol and the Figure 2 formula must agree on the
	// operational boundary: buffer ≥ pps×2×latency ⇒ operational.
	const pps = 4000
	latency := 5 * sim.Millisecond
	needed := int(float64(pps) * 2 * latency.Seconds()) // 40 packets

	for _, c := range []struct {
		buffer int
		wantOK bool
	}{
		{needed * 4, true},
		{needed / 4, false},
	} {
		b := newProtoBed(t, c.buffer, latency)
		b.cbr(7, pps, 2*sim.Second)
		b.link.AB.SetFailure(netsim.FailEntries(3, sim.Second, 0.05, 7))
		b.s.Run(3 * sim.Second)
		if got := b.p.Operational(0.9); got != c.wantOK {
			t.Errorf("buffer=%d (needed≈%d): operational=%v, want %v (attributed %.2f)",
				c.buffer, needed, got, c.wantOK, b.p.AttributedFraction())
		}
	}
}
