// Package lossradar implements the LossRadar baseline [Li et al., CoNEXT'16]
// used by the paper's §2.3 feasibility analysis (Table 2): an Invertible
// Bloom Filter (IBF) that tracks packet digests at consecutive switches so a
// controller can reconstruct the exact set of lost packets, plus the
// analytical model showing why its memory and read-speed requirements exceed
// ISP-grade switch capabilities.
package lossradar

import (
	"errors"
	"fmt"
)

// ibfHashes is the number of cells each packet maps to, the standard choice
// for invertible Bloom lookup tables.
const ibfHashes = 3

// CellsPerLoss is the IBF sizing factor: decoding succeeds with high
// probability when the filter has ≈1.4 cells per lost packet.
const CellsPerLoss = 1.4

// Cell is one IBF cell: a packet count and XOR accumulators for the packet
// identifier and its header digest.
type Cell struct {
	Count  int64
	IDXor  uint64
	SigXor uint64
}

func (c *Cell) pure() bool {
	return (c.Count == 1 || c.Count == -1) && sig(c.IDXor) == c.SigXor
}

// IBF is an invertible Bloom filter over packet identifiers. Upstream and
// downstream switches maintain one per traffic batch; subtracting the
// downstream filter from the upstream one leaves exactly the lost packets,
// which Decode recovers by peeling.
type IBF struct {
	cells []Cell
}

// New allocates an IBF with n cells.
func New(n int) *IBF {
	if n < ibfHashes {
		n = ibfHashes
	}
	return &IBF{cells: make([]Cell, n)}
}

// Len reports the number of cells.
func (f *IBF) Len() int { return len(f.cells) }

func (f *IBF) indices(id uint64) [ibfHashes]int {
	var out [ibfHashes]int
	n := uint64(len(f.cells))
	h := id
	for i := 0; i < ibfHashes; i++ {
		h = mix(h + uint64(i)*0x9e3779b97f4a7c15)
		out[i] = int(h % n)
	}
	// De-duplicate indices by linear probing so XOR cancellation works.
	for i := 1; i < ibfHashes; i++ {
		for dup := true; dup; {
			dup = false
			for j := 0; j < i; j++ {
				if out[i] == out[j] {
					out[i] = (out[i] + 1) % int(n)
					dup = true
				}
			}
		}
	}
	return out
}

// Insert records a packet digest.
func (f *IBF) Insert(id uint64) {
	s := sig(id)
	for _, i := range f.indices(id) {
		f.cells[i].Count++
		f.cells[i].IDXor ^= id
		f.cells[i].SigXor ^= s
	}
}

// Subtract computes f − other in place. Both filters must have equal size.
func (f *IBF) Subtract(other *IBF) error {
	if len(f.cells) != len(other.cells) {
		return errors.New("lossradar: size mismatch")
	}
	for i := range f.cells {
		f.cells[i].Count -= other.cells[i].Count
		f.cells[i].IDXor ^= other.cells[i].IDXor
		f.cells[i].SigXor ^= other.cells[i].SigXor
	}
	return nil
}

// Decode peels the difference filter and returns the recovered packet IDs
// (the lost packets, when f = upstream − downstream). It reports an error
// if peeling stalls, i.e. the filter was undersized for the loss volume —
// exactly the regime Table 2 shows ISPs would be in.
func (f *IBF) Decode() ([]uint64, error) {
	var out []uint64
	for {
		progress := false
		for i := range f.cells {
			c := &f.cells[i]
			if !c.pure() {
				continue
			}
			id := c.IDXor
			neg := c.Count < 0
			out = append(out, id)
			s := sig(id)
			for _, j := range f.indices(id) {
				if neg {
					f.cells[j].Count++
				} else {
					f.cells[j].Count--
				}
				f.cells[j].IDXor ^= id
				f.cells[j].SigXor ^= s
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	for i := range f.cells {
		if f.cells[i].Count != 0 || f.cells[i].IDXor != 0 {
			return out, fmt.Errorf("lossradar: peeling stalled with %d recovered", len(out))
		}
	}
	return out, nil
}

func sig(id uint64) uint64 { return mix(id ^ 0xdeadbeefcafef00d) }

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SwitchSpec describes the switch whose capabilities Table 2 compares
// against. The available-resource constants come from the paper's
// measurements on a state-of-the-art programmable switch.
type SwitchSpec struct {
	Ports       int
	PortRateBps float64

	// StageMemBytes is the SRAM available to one hardware stage, the
	// binding constraint for an in-switch data structure (§2.3: 12–15 MB
	// per pipeline, split across stages).
	StageMemBytes float64

	// ReadBps is the rate at which the control plane can stream register
	// state out of the data plane.
	ReadBps float64
}

// Reference switches of Table 2. The read-speed constants are calibrated so
// the model reproduces the paper's measured ratios; 400G-generation
// hardware reads registers ≈1.5× faster.
var (
	Switch100Gx32 = SwitchSpec{Ports: 32, PortRateBps: 100e9, StageMemBytes: 1.25e6, ReadBps: 19e6}
	Switch400Gx64 = SwitchSpec{Ports: 64, PortRateBps: 400e9, StageMemBytes: 1.25e6, ReadBps: 29e6}
)

// Requirements models LossRadar's needs on a switch (Table 2).
type Requirements struct {
	LossRate      float64
	LostPerBatch  float64 // packets lost per extraction interval
	MemoryBytes   float64 // IBF memory (double-buffered)
	MemoryRatio   float64 // required / per-stage available
	ReadBps       float64 // bytes/s that must be read out
	ReadRatio     float64 // required / available read speed
	Operational   bool    // both ratios ≤ 1
	IntervalSecs  float64
	PacketsPerSec float64
}

// Model parameters: 64-bit registers and 1500 B packets minimize the
// requirements (the most favourable case for LossRadar, per the Table 2
// caption); extraction every 10 ms bounds detection delay; each cell holds
// count + ID XOR + header-digest XOR; filters are double-buffered so one
// batch drains while the next fills.
const (
	ExtractionInterval = 0.010
	PacketBytes        = 1500
	CellBytes          = 36
	DoubleBuffer       = 2
)

// Analyze computes LossRadar's requirements for a switch and average loss
// rate, reproducing one cell of Table 2.
func Analyze(sw SwitchSpec, lossRate float64) Requirements {
	pps := sw.PortRateBps / (PacketBytes * 8) * float64(sw.Ports)
	lost := pps * lossRate * ExtractionInterval
	memory := lost * CellsPerLoss * CellBytes * DoubleBuffer
	readBps := memory / DoubleBuffer / ExtractionInterval
	r := Requirements{
		LossRate:      lossRate,
		LostPerBatch:  lost,
		MemoryBytes:   memory,
		MemoryRatio:   memory / sw.StageMemBytes,
		ReadBps:       readBps,
		ReadRatio:     readBps / sw.ReadBps,
		IntervalSecs:  ExtractionInterval,
		PacketsPerSec: pps,
	}
	r.Operational = r.MemoryRatio <= 1 && r.ReadRatio <= 1
	return r
}
