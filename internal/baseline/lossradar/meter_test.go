package lossradar

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

type meterBed struct {
	s    *sim.Sim
	src  *netsim.Host
	link *netsim.Link
	m    *MeterPair
}

func newMeterBed(t *testing.T, cells int, interval sim.Time) *meterBed {
	t.Helper()
	s := sim.New(1)
	b := &meterBed{s: s}
	b.src = netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	lc := netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 10e9}
	netsim.Connect(s, b.src, 0, up, 0, lc)
	b.link = netsim.Connect(s, up, 1, down, 0, lc)
	netsim.Connect(s, down, 1, dst, 0, lc)
	up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	b.m = NewMeterPair(s, cells, interval)
	up.AddEgressHook(b.m)
	up.RefreshEgressHooks()
	down.AddIngressHook(b.m)
	return b
}

func (b *meterBed) cbr(entry netsim.EntryID, pps int, stop sim.Time) {
	gap := sim.Second / sim.Time(pps)
	var tick func()
	tick = func() {
		if b.s.Now() >= stop {
			return
		}
		b.src.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Proto: netsim.ProtoUDP, Size: 500})
		b.s.Schedule(gap, tick)
	}
	b.s.Schedule(0, tick)
}

func TestMeterDecodesLowLoss(t *testing.T) {
	// 1000 pps, 10 ms batches → 10 packets/batch; 1% loss ≈ 0.1 losses
	// per batch; 64 cells decode trivially and recover the exact per-
	// entry loss counts.
	b := newMeterBed(t, 64, 10*sim.Millisecond)
	b.cbr(7, 1000, 3*sim.Second)
	b.cbr(8, 1000, 3*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, sim.Second, 0.01, 7))
	b.s.Run(4 * sim.Second)

	if b.m.Batches == 0 {
		t.Fatal("no batches extracted")
	}
	if f := b.m.DecodeFraction(); f < 0.99 {
		t.Fatalf("decode fraction = %.2f at low loss, want ≈1", f)
	}
	if b.m.LostRecovered[7] == 0 {
		t.Fatal("losses not recovered for the failing entry")
	}
	if b.m.LostRecovered[8] != 0 {
		t.Error("phantom losses recovered for a healthy entry")
	}
	// The recovered count matches the injected drops exactly — LossRadar
	// reconstructs per-packet identities, not estimates.
	if got, want := b.m.LostRecovered[7], b.link.AB.Failure().Dropped.Data; got != want {
		t.Errorf("recovered %d losses, injected %d", got, want)
	}
}

func TestMeterStallsWhenUndersized(t *testing.T) {
	// The Table 2 regime: losses per batch ≫ cells. 4000 pps × 50% loss
	// × 10 ms = ≈20 losses/batch through an 8-cell filter: most batches
	// stall and the controller recovers (almost) nothing.
	b := newMeterBed(t, 8, 10*sim.Millisecond)
	b.cbr(7, 4000, 2*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(3, 500*sim.Millisecond, 0.5, 7))
	b.s.Run(3 * sim.Second)

	if b.m.StalledBatches == 0 {
		t.Fatal("no stalled batches despite overload")
	}
	if f := b.m.DecodeFraction(); f > 0.6 {
		t.Fatalf("decode fraction = %.2f under overload, want low", f)
	}
	// What was recovered is far less than what was lost.
	if b.m.LostRecovered[7] >= b.link.AB.Failure().Dropped.Data {
		t.Error("recovered as much as was lost despite stalls")
	}
}

func TestMeterLosslessBatchesDecodeEmpty(t *testing.T) {
	b := newMeterBed(t, 32, 10*sim.Millisecond)
	b.cbr(7, 2000, sim.Second)
	b.s.Run(2 * sim.Second)
	if f := b.m.DecodeFraction(); f != 1 {
		t.Fatalf("decode fraction = %.2f without loss", f)
	}
	if len(b.m.LostRecovered) != 0 {
		t.Errorf("phantom recoveries: %v", b.m.LostRecovered)
	}
}
