package lossradar

// An executable LossRadar meter pair on the netsim substrate: the upstream
// and downstream switches each maintain an IBF per measurement batch (the
// packet carries its batch number, as in LossRadar's design, so in-flight
// packets count into the right batch); the "controller" extracts each
// batch one interval after it closes, subtracts the filters, and peels out
// the exact identities of the lost packets. With cells sized for low loss
// (Table 2's constraint) the decode stalls as soon as a batch's losses
// exceed the filter — the executable form of §2.3's argument.

import (
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

const meterRing = 4

// MeterPair instruments one link direction with per-batch IBFs extracted
// every Interval.
type MeterPair struct {
	s        *sim.Sim
	cells    int
	interval sim.Time

	batches [meterRing]meterBatch
	nextID  uint64

	// Batches / DecodedBatches / StalledBatches count extraction rounds
	// with traffic and their outcomes; LostRecovered accumulates the
	// per-entry losses the controller reconstructed.
	Batches        uint64
	DecodedBatches uint64
	StalledBatches uint64
	LostRecovered  map[netsim.EntryID]uint64
}

type meterBatch struct {
	id       int64
	up, down *IBF
	entryOf  map[uint64]netsim.EntryID
	inserts  int
}

// NewMeterPair builds a meter pair with the given IBF cells per side and
// extraction interval (the paper's LossRadar uses 10 ms batches).
func NewMeterPair(s *sim.Sim, cells int, interval sim.Time) *MeterPair {
	m := &MeterPair{
		s: s, cells: cells, interval: interval,
		LostRecovered: make(map[netsim.EntryID]uint64),
	}
	for i := range m.batches {
		m.batches[i] = meterBatch{id: int64(i) - meterRing, up: New(cells), down: New(cells),
			entryOf: make(map[uint64]netsim.EntryID)}
	}
	// Batch 0 closes at interval; extract it one interval later.
	s.Schedule(2*interval, func() { m.extract(0) })
	return m
}

func (m *MeterPair) batch(id int64) *meterBatch {
	b := &m.batches[id%meterRing]
	if b.id != id {
		// First touch of this batch slot in its new generation.
		b.id = id
		b.up = New(m.cells)
		b.down = New(m.cells)
		b.entryOf = make(map[uint64]netsim.EntryID)
		b.inserts = 0
	}
	return b
}

// OnEgress implements netsim.EgressHook at the upstream switch. The
// packet's digest (in hardware, a hash of immutable header fields; here
// the simulator packet identity) goes into the current batch's IBF, and
// the batch number rides the packet so the downstream inserts the same
// digest into the same batch despite in-flight delay.
func (m *MeterPair) OnEgress(pkt *netsim.Packet, port int) {
	if pkt.Proto == netsim.ProtoFancy || pkt.Entry == netsim.InvalidEntry {
		return
	}
	id := int64(m.s.Now() / m.interval)
	b := m.batch(id)
	m.nextID++
	if pkt.ID == 0 {
		pkt.ID = m.nextID
	}
	pkt.ProbeWindow = id + 1 // 0 means unstamped
	b.up.Insert(pkt.ID)
	b.entryOf[pkt.ID] = pkt.Entry
	b.inserts++
}

// OnIngress implements netsim.IngressHook at the downstream switch.
func (m *MeterPair) OnIngress(pkt *netsim.Packet, port int) bool {
	if pkt.ProbeWindow == 0 {
		return false
	}
	id := pkt.ProbeWindow - 1
	pkt.ProbeWindow = 0
	b := &m.batches[id%meterRing]
	if b.id == id {
		b.down.Insert(pkt.ID)
	}
	return false
}

// extract plays the controller for one closed batch.
func (m *MeterPair) extract(id int64) {
	b := &m.batches[id%meterRing]
	if b.id == id && b.inserts > 0 {
		m.Batches++
		diff := b.up
		if err := diff.Subtract(b.down); err == nil {
			if lost, err := diff.Decode(); err == nil {
				m.DecodedBatches++
				for _, pid := range lost {
					if e, ok := b.entryOf[pid]; ok {
						m.LostRecovered[e]++
					}
				}
			} else {
				m.StalledBatches++
			}
		}
	}
	m.s.Schedule(m.interval, func() { m.extract(id + 1) })
}

// DecodeFraction reports the share of traffic-carrying batches the
// controller could decode.
func (m *MeterPair) DecodeFraction() float64 {
	if m.Batches == 0 {
		return 1
	}
	return float64(m.DecodedBatches) / float64(m.Batches)
}
