package lossradar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIBFRoundTripNoLoss(t *testing.T) {
	up, down := New(64), New(64)
	for i := uint64(1); i <= 20; i++ {
		up.Insert(i)
		down.Insert(i)
	}
	if err := up.Subtract(down); err != nil {
		t.Fatal(err)
	}
	lost, err := up.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(lost) != 0 {
		t.Errorf("decoded %d losses from a lossless batch", len(lost))
	}
}

func TestIBFRecoversLostPackets(t *testing.T) {
	up, down := New(64), New(64)
	lostWant := map[uint64]bool{5: true, 11: true, 17: true}
	for i := uint64(1); i <= 30; i++ {
		up.Insert(i)
		if !lostWant[i] {
			down.Insert(i)
		}
	}
	if err := up.Subtract(down); err != nil {
		t.Fatal(err)
	}
	lost, err := up.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(lost) != len(lostWant) {
		t.Fatalf("recovered %d losses, want %d", len(lost), len(lostWant))
	}
	for _, id := range lost {
		if !lostWant[id] {
			t.Errorf("recovered spurious id %d", id)
		}
	}
}

func TestIBFSizeMismatch(t *testing.T) {
	if err := New(32).Subtract(New(64)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestIBFUndersizedStalls(t *testing.T) {
	// Losing far more packets than the filter has cells must stall the
	// peeling — the failure mode that makes LossRadar non-operational.
	up, down := New(16), New(16)
	for i := uint64(1); i <= 1000; i++ {
		up.Insert(i)
		if i%2 == 0 {
			down.Insert(i) // 500 losses through 16 cells
		}
	}
	up.Subtract(down)
	if _, err := up.Decode(); err == nil {
		t.Fatal("undersized IBF decoded 500 losses through 16 cells")
	}
}

// Property: with ≥ CellsPerLoss cells per lost packet, random loss sets
// decode correctly with high probability.
func TestPropertyIBFDecodesAtDesignLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	failures := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		nLost := 10 + rng.Intn(90)
		cells := int(float64(nLost)*CellsPerLoss) + 3
		up, down := New(cells), New(cells)
		lost := make(map[uint64]bool, nLost)
		for len(lost) < nLost {
			lost[rng.Uint64()|1] = true
		}
		for i := 0; i < 1000; i++ {
			id := rng.Uint64() &^ 1 // even ids: never in the lost set
			up.Insert(id)
			down.Insert(id)
		}
		for id := range lost {
			up.Insert(id)
		}
		up.Subtract(down)
		got, err := up.Decode()
		if err != nil || len(got) != nLost {
			failures++
			continue
		}
		for _, id := range got {
			if !lost[id] {
				t.Fatalf("trial %d: spurious recovery %d", trial, id)
			}
		}
	}
	// 1.4 cells/loss gives high but not certain success; tolerate a few.
	if failures > trials/6 {
		t.Errorf("%d/%d trials failed to decode at design load", failures, trials)
	}
}

// Property: subtraction is the inverse of symmetric insertion.
func TestPropertySubtractCancels(t *testing.T) {
	f := func(ids []uint64) bool {
		if len(ids) > 200 {
			ids = ids[:200]
		}
		up, down := New(128), New(128)
		for _, id := range ids {
			up.Insert(id)
			down.Insert(id)
		}
		up.Subtract(down)
		for _, c := range up.cells {
			if c.Count != 0 || c.IDXor != 0 || c.SigXor != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeReproducesTable2(t *testing.T) {
	cases := []struct {
		sw        SwitchSpec
		loss      float64
		memRatio  float64
		readRatio float64
	}{
		// Paper Table 2 (100 Gbps × 32 ports): 0.1% → ×0.21 / ×0.7;
		// 0.2% → ×0.42 / ×1.4; 0.3% → ×0.63 / ×2.1; 1% → ×2.1 / ×6.6.
		{Switch100Gx32, 0.001, 0.21, 0.7},
		{Switch100Gx32, 0.002, 0.42, 1.4},
		{Switch100Gx32, 0.003, 0.63, 2.1},
		{Switch100Gx32, 0.010, 2.1, 6.6},
		// 400 Gbps × 64 ports: 0.1% → ×1.7 / ×3.7; 1% → ×16.9 / ×29.5.
		{Switch400Gx64, 0.001, 1.7, 3.7},
		{Switch400Gx64, 0.010, 16.9, 29.5},
	}
	for _, c := range cases {
		r := Analyze(c.sw, c.loss)
		if !within(r.MemoryRatio, c.memRatio, 0.35) {
			t.Errorf("%dG loss=%.1f%%: memory ratio %.2f, paper %.2f",
				int(c.sw.PortRateBps/1e9), c.loss*100, r.MemoryRatio, c.memRatio)
		}
		if !within(r.ReadRatio, c.readRatio, 0.35) {
			t.Errorf("%dG loss=%.1f%%: read ratio %.2f, paper %.2f",
				int(c.sw.PortRateBps/1e9), c.loss*100, r.ReadRatio, c.readRatio)
		}
	}
}

func TestAnalyzeOperationalThreshold(t *testing.T) {
	// The headline claim of §2.3: LossRadar cannot support average loss
	// rates above ≈0.15% on a 100 Gbps 32-port switch.
	if r := Analyze(Switch100Gx32, 0.0005); !r.Operational {
		t.Error("0.05% loss should be within capabilities")
	}
	if r := Analyze(Switch100Gx32, 0.003); r.Operational {
		t.Error("0.3% loss should exceed capabilities")
	}
	if r := Analyze(Switch400Gx64, 0.001); r.Operational {
		t.Error("400G switch at 0.1% should already be infeasible")
	}
}

func within(got, want, tol float64) bool {
	return got >= want*(1-tol) && got <= want*(1+tol)
}

func BenchmarkIBFInsert(b *testing.B) {
	f := New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}

func BenchmarkIBFDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		up, down := New(256), New(256)
		for j := uint64(0); j < 2000; j++ {
			up.Insert(j)
			if j >= 100 {
				down.Insert(j)
			}
		}
		up.Subtract(down)
		b.StartTimer()
		if _, err := up.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}
