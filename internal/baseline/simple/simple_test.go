package simple

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// bed wires a probe onto a two-switch link with CBR traffic.
type bed struct {
	s    *sim.Sim
	src  *netsim.Host
	up   *netsim.Switch
	down *netsim.Switch
	dst  *netsim.Host
	link *netsim.Link
}

func newBed(t *testing.T) *bed {
	t.Helper()
	s := sim.New(1)
	b := &bed{s: s}
	b.src = netsim.NewHost(s, "src")
	b.dst = netsim.NewHost(s, "dst")
	b.up = netsim.NewSwitch(s, "up", 2)
	b.down = netsim.NewSwitch(s, "down", 2)
	netsim.Connect(s, b.src, 0, b.up, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 1e9})
	b.link = netsim.Connect(s, b.up, 1, b.down, 0, netsim.LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 1e9})
	netsim.Connect(s, b.down, 1, b.dst, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 1e9})
	b.up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	b.down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	b.dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	return b
}

func (b *bed) attach(p *Probe) {
	b.up.AddEgressHook(p)
	b.up.RefreshEgressHooks()
	b.down.AddIngressHook(p)
}

func (b *bed) cbr(entry netsim.EntryID, pps int, stop sim.Time) {
	gap := sim.Second / sim.Time(pps)
	var tick func()
	tick = func() {
		if b.s.Now() >= stop {
			return
		}
		b.src.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Proto: netsim.ProtoUDP, Size: 500})
		b.s.Schedule(gap, tick)
	}
	b.s.Schedule(0, tick)
}

func TestSingleCounterDetectsButCannotLocalize(t *testing.T) {
	b := newBed(t)
	p := NewProbe(b.s, SingleCounter{}, 50*sim.Millisecond)
	b.attach(p)
	b.cbr(1, 200, 3*sim.Second)
	b.cbr(2, 200, 3*sim.Second)
	b.link.AB.SetFailure(netsim.FailEntries(1, sim.Second, 1.0, 1))
	b.s.Run(3 * sim.Second)

	if !p.EntryFlagged(1) {
		t.Fatal("failure not detected")
	}
	// The innocent entry is equally implicated: the design's fundamental
	// weakness (§5.2: FP count = all entries minus the failed ones).
	if !p.EntryFlagged(2) {
		t.Error("single counter should implicate every entry")
	}
	if fp := p.FalsePositives([]netsim.EntryID{1, 2, 3}, map[netsim.EntryID]bool{1: true}); fp != 2 {
		t.Errorf("false positives = %d, want 2", fp)
	}
}

func TestPerEntryExactLocalization(t *testing.T) {
	b := newBed(t)
	p := NewProbe(b.s, PerEntry{N: 10}, 50*sim.Millisecond)
	b.attach(p)
	for e := netsim.EntryID(0); e < 5; e++ {
		b.cbr(e, 100, 3*sim.Second)
	}
	b.link.AB.SetFailure(netsim.FailEntries(1, sim.Second, 1.0, 3))
	b.s.Run(3 * sim.Second)

	if !p.EntryFlagged(3) {
		t.Fatal("failed entry not flagged")
	}
	universe := []netsim.EntryID{0, 1, 2, 3, 4}
	if fp := p.FalsePositives(universe, map[netsim.EntryID]bool{3: true}); fp != 0 {
		t.Errorf("per-entry design has %d false positives, want 0", fp)
	}
	at, ok := p.EntryFlaggedAt(3)
	if !ok || at < sim.Second || at > 1200*sim.Millisecond {
		t.Errorf("flagged at %v, want within ≈2 intervals of the failure", at)
	}
}

func TestPerEntryMemoryMatchesPaper(t *testing.T) {
	// §5.2: 250K entries with counting-protocol support require 320 MB
	// on a 64-port switch versus FANcY's 1.25 MB.
	mem := PerEntry{N: 250_000}.MemoryBytes(64)
	if mem < 150e6 || mem > 400e6 {
		t.Errorf("per-entry memory = %d MB, want ≈160-320 MB", mem/1e6)
	}
	// And §2.4: the full Internet table (~1M /24-ish prefixes at 32-bit
	// counters) is about 512 MB; our 80-bit figure is the same order.
	if m := (PerEntry{N: 1_000_000}).MemoryBytes(64); m < 300e6 {
		t.Errorf("Internet-table memory = %d MB, want hundreds of MB", m/1e6)
	}
}

func TestCountingBloomLocalizesWithCollisions(t *testing.T) {
	b := newBed(t)
	cb := CountingBloom{M: 64, K: 2, Seed: 3}
	p := NewProbe(b.s, cb, 50*sim.Millisecond)
	b.attach(p)
	for e := netsim.EntryID(0); e < 20; e++ {
		b.cbr(e, 100, 3*sim.Second)
	}
	b.link.AB.SetFailure(netsim.FailEntries(1, sim.Second, 1.0, 7))
	b.s.Run(3 * sim.Second)

	if !p.EntryFlagged(7) {
		t.Fatal("failed entry not flagged by counting Bloom filter")
	}
	// A Bloom filter can implicate innocents but never misses the guilty.
	universe := make([]netsim.EntryID, 1000)
	for i := range universe {
		universe[i] = netsim.EntryID(i)
	}
	fp := p.FalsePositives(universe, map[netsim.EntryID]bool{7: true})
	// With 2 cells flagged of 64 and k=2, expected FPs ≈ 1000×(2/64)² ≈ 1;
	// anything wildly higher means the probe flags unrelated cells.
	if fp > 30 {
		t.Errorf("false positives = %d, want a small number", fp)
	}
}

func TestCountingBloomIndexProperties(t *testing.T) {
	cb := CountingBloom{M: 128, K: 3, Seed: 1}
	seen := make(map[int]bool)
	for e := netsim.EntryID(0); e < 500; e++ {
		idx := cb.Index(e)
		if len(idx) != 3 {
			t.Fatalf("K=3 but got %d indices", len(idx))
		}
		for _, i := range idx {
			if i < 0 || i >= 128 {
				t.Fatalf("index %d out of range", i)
			}
			seen[i] = true
		}
	}
	if len(seen) < 100 {
		t.Errorf("only %d/128 cells used; hash badly skewed", len(seen))
	}
	if (CountingBloom{}).Name() == "" || (PerEntry{}).Name() == "" || (SingleCounter{}).Name() == "" {
		t.Error("designs must have names")
	}
}

func TestCountingDutyPausesCounting(t *testing.T) {
	b := newBed(t)
	p := NewProbe(b.s, SingleCounter{}, 100*sim.Millisecond)
	p.CountingDuty = 0.5
	b.attach(p)
	b.cbr(1, 1000, 2*sim.Second)
	b.s.Run(2 * sim.Second)
	// No failure: no flags even with pauses (pauses must be symmetric).
	if p.FlaggedCells() != 0 {
		t.Errorf("duty-cycle pauses caused %d false flags", p.FlaggedCells())
	}
}

func TestProbeIgnoresControlAndUnclassified(t *testing.T) {
	b := newBed(t)
	p := NewProbe(b.s, SingleCounter{}, 50*sim.Millisecond)
	b.attach(p)
	// Control and unclassified packets dropped by a failure must not
	// show up as mismatches (they are not counted at all).
	b.s.Schedule(0, func() {
		b.src.Send(&netsim.Packet{Proto: netsim.ProtoFancy, Entry: netsim.InvalidEntry,
			Dst: netsim.EntryAddr(1, 1), Size: 64})
	})
	b.s.Run(1 * sim.Second)
	if p.FlaggedCells() != 0 {
		t.Error("control packets were counted")
	}
}

func TestPerEntryOutOfRange(t *testing.T) {
	p := PerEntry{N: 10}
	if got := p.Index(netsim.EntryID(20)); got != nil {
		t.Errorf("out-of-range entry got cells %v", got)
	}
}
