// Package simple implements the strawman designs of §2.4/§5.2 that FANcY is
// compared against: a single counter per link, one dedicated counter per
// prefix, and a counting Bloom filter. All three share a synchronized
// per-interval counting harness (upstream counts at the sender side of a
// link, downstream at the receiver side, compared every interval), so their
// accuracy can be measured on the same simulations as FANcY.
package simple

import (
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// Design maps entries to counter cells.
type Design interface {
	// Cells is the number of counter cells per side.
	Cells() int
	// Index returns the cells an entry's packets increment.
	Index(entry netsim.EntryID) []int
	// Name identifies the design in reports.
	Name() string
}

// SingleCounter is one counter for the whole link: it detects that the link
// loses packets but cannot localize anything — every entry is implicated.
type SingleCounter struct{}

func (SingleCounter) Cells() int                 { return 1 }
func (SingleCounter) Index(netsim.EntryID) []int { return []int{0} }
func (SingleCounter) Name() string               { return "single-counter" }

// PerEntry dedicates one counter to each of n entries (entries must be
// 0..n-1). It is exact but needs memory proportional to the routing table:
// §2.4 computes ≈512 MB for the Internet table on a 64-port switch.
type PerEntry struct{ N int }

func (p PerEntry) Cells() int { return p.N }
func (p PerEntry) Index(e netsim.EntryID) []int {
	if int(e) >= p.N {
		return nil
	}
	return []int{int(e)}
}
func (p PerEntry) Name() string { return "per-entry" }

// MemoryBytes is the per-entry design's memory need across both sides with
// counting-protocol support (80 bits per entry, as for FANcY's dedicated
// counters), times the port count.
func (p PerEntry) MemoryBytes(ports int) int { return p.N * 80 / 8 * ports }

// CountingBloom hashes every entry into K of M cells. It fits any memory
// budget but collisions implicate innocent entries: the paper measures ≈100
// false positives per detected failure at ISP routing-table sizes.
type CountingBloom struct {
	M    int
	K    int
	Seed uint64
}

func (c CountingBloom) Cells() int { return c.M }

func (c CountingBloom) Index(e netsim.EntryID) []int {
	out := make([]int, c.K)
	h := uint64(e) ^ c.Seed
	for i := 0; i < c.K; i++ {
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		h += uint64(i) * 0x9e3779b97f4a7c15
		out[i] = int(h % uint64(c.M))
	}
	return out
}

func (c CountingBloom) Name() string { return "counting-bloom" }

// MemoryBytes for the counting Bloom filter: 32-bit cells on both sides.
func (c CountingBloom) MemoryBytes() int { return c.M * 4 * 2 }

// probeRing is the number of in-flight measurement windows kept. A window
// is compared one full interval after it closes, so two slots are live at a
// time; four gives headroom.
const probeRing = 4

// Probe attaches a design to one link: the upstream egress stamps each data
// packet with the current measurement window and counts it; the downstream
// ingress counts the packet into its stamped window. A window is compared
// one interval after it closes — by then all its packets have either
// arrived or been lost — and mismatching cells are flagged. The stamp plays
// the role of FANcY's session tags: both sides count the same packets in
// the same window despite propagation delay.
type Probe struct {
	Design   Design
	Interval sim.Time
	// CountingDuty is the fraction of each interval during which packets
	// are counted (default 1.0), modelling the pauses counter-exchange
	// protocols impose.
	CountingDuty float64

	s           *sim.Sim
	up, down    [probeRing][]uint64
	flagged     []bool
	flaggedAt   []sim.Time
	started     sim.Time
	ComparesRun uint64
}

// NewProbe builds a probe and starts its comparison cycle.
func NewProbe(s *sim.Sim, d Design, interval sim.Time) *Probe {
	p := &Probe{
		Design: d, Interval: interval, CountingDuty: 1.0, s: s,
		flagged:   make([]bool, d.Cells()),
		flaggedAt: make([]sim.Time, d.Cells()),
	}
	for i := range p.up {
		p.up[i] = make([]uint64, d.Cells())
		p.down[i] = make([]uint64, d.Cells())
	}
	p.started = s.Now()
	// Window 0 closes at interval; compare it one interval later.
	s.Schedule(2*interval, func() { p.compare(0) })
	return p
}

// window returns the measurement window index at the current time, and
// whether counting is active within the duty cycle.
func (p *Probe) window() (int64, bool) {
	el := p.s.Now() - p.started
	w := int64(el / p.Interval)
	if p.CountingDuty < 1 {
		phase := el % p.Interval
		if float64(phase) >= p.CountingDuty*float64(p.Interval) {
			return w, false
		}
	}
	return w, true
}

// OnEgress implements netsim.EgressHook for the upstream switch.
func (p *Probe) OnEgress(pkt *netsim.Packet, port int) {
	if pkt.Proto == netsim.ProtoFancy || pkt.Entry == netsim.InvalidEntry {
		return
	}
	w, active := p.window()
	if !active {
		return
	}
	pkt.ProbeWindow = w + 1 // 0 means unstamped
	for _, i := range p.Design.Index(pkt.Entry) {
		p.up[w%probeRing][i]++
	}
}

// OnIngress implements netsim.IngressHook for the downstream switch.
func (p *Probe) OnIngress(pkt *netsim.Packet, port int) bool {
	if pkt.Proto == netsim.ProtoFancy || pkt.Entry == netsim.InvalidEntry || pkt.ProbeWindow == 0 {
		return false
	}
	w := pkt.ProbeWindow - 1
	pkt.ProbeWindow = 0 // stamp is per-link
	for _, i := range p.Design.Index(pkt.Entry) {
		p.down[w%probeRing][i]++
	}
	return false
}

func (p *Probe) compare(w int64) {
	p.ComparesRun++
	slot := w % probeRing
	up, down := p.up[slot], p.down[slot]
	for i := range up {
		if up[i] > down[i] && !p.flagged[i] {
			p.flagged[i] = true
			p.flaggedAt[i] = p.s.Now()
		}
		up[i] = 0
		down[i] = 0
	}
	p.s.Schedule(p.Interval, func() { p.compare(w + 1) })
}

// EntryFlagged reports whether all the entry's cells have been flagged —
// the design's claim that the entry is failing.
func (p *Probe) EntryFlagged(e netsim.EntryID) bool {
	cells := p.Design.Index(e)
	if len(cells) == 0 {
		return false
	}
	for _, i := range cells {
		if !p.flagged[i] {
			return false
		}
	}
	return true
}

// EntryFlaggedAt returns the latest flag time across the entry's cells.
func (p *Probe) EntryFlaggedAt(e netsim.EntryID) (sim.Time, bool) {
	if !p.EntryFlagged(e) {
		return 0, false
	}
	var at sim.Time
	for _, i := range p.Design.Index(e) {
		if p.flaggedAt[i] > at {
			at = p.flaggedAt[i]
		}
	}
	return at, true
}

// FlaggedCells counts flagged cells.
func (p *Probe) FlaggedCells() int {
	n := 0
	for _, f := range p.flagged {
		if f {
			n++
		}
	}
	return n
}

// FalsePositives counts entries of a universe that are flagged but not in
// the failed set.
func (p *Probe) FalsePositives(universe []netsim.EntryID, failed map[netsim.EntryID]bool) int {
	n := 0
	for _, e := range universe {
		if !failed[e] && p.EntryFlagged(e) {
			n++
		}
	}
	return n
}
