package fancy_test

import (
	"fmt"

	"fancy"
)

// The canonical deployment: monitor one link, inject a gray failure,
// observe the flag.
func Example() {
	s := fancy.NewSim(1)
	ml := fancy.NewMonitoredLink(s, fancy.Config{
		HighPriority: []fancy.EntryID{10},
		MemoryBytes:  20_000,
	})
	ml.UDP(10, 2e6, 0, 6*fancy.Second)
	ml.FailEntries(2*fancy.Second, 1.0, 10)
	s.Run(6 * fancy.Second)
	fmt.Println("flagged:", ml.Flagged(10))
	// Output: flagged: true
}

// Best-effort entries are covered by the hash-based tree: no dedicated
// state, detection after the zooming algorithm reaches a leaf.
func Example_hashTree() {
	s := fancy.NewSim(2)
	ml := fancy.NewMonitoredLink(s, fancy.Config{
		HighPriority: []fancy.EntryID{1}, // entry 700 is best effort
		MemoryBytes:  20_000,
	})
	var first fancy.Event
	ml.OnEvent(func(ev fancy.Event) {
		if ev.Kind == fancy.EventTreeLeaf && first.Time == 0 {
			first = ev
		}
	})
	ml.UDP(700, 2e6, 0, 8*fancy.Second)
	ml.FailEntries(2*fancy.Second, 1.0, 700)
	s.Run(8 * fancy.Second)
	fmt.Println("flagged:", ml.Flagged(700))
	fmt.Println("sub-second:", first.Time-2*fancy.Second < fancy.Second)
	// Output:
	// flagged: true
	// sub-second: true
}

// Input translation rejects configurations that do not fit the memory
// budget, as Figure 1 prescribes.
func ExampleConfig_Plan() {
	hp := make([]fancy.EntryID, 500)
	for i := range hp {
		hp[i] = fancy.EntryID(i)
	}
	layout, err := fancy.Config{HighPriority: hp, MemoryBytes: 20_000}.Plan()
	fmt.Println("err:", err)
	fmt.Println("dedicated:", layout.Dedicated, "tree depth:", layout.Tree.Depth)

	_, err = fancy.Config{HighPriority: hp, MemoryBytes: 1_000}.Plan()
	fmt.Println("over budget:", err != nil)
	// Output:
	// err: <nil>
	// dedicated: 500 tree depth: 3
	// over budget: true
}
