module fancy

go 1.22
