// Command fancy-bench regenerates the tables and figures of the FANcY
// paper's evaluation.
//
// Usage:
//
//	fancy-bench -list
//	fancy-bench -exp fig7,table3
//	fancy-bench -exp all -full                      # paper-scale parameters (slow)
//	fancy-bench -exp fleet,hh-churn -bench-json BENCH_fleet.json
//	fancy-bench -exp fleet -full -workers 4        # parallel fleet trials
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record. -bench-json
// additionally writes the machine-readable benchmark cells (TTL medians
// plus wall-clock per sweep cell) that CI archives as an artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"fancy/internal/exp"
)

type experiment struct {
	name string
	desc string
	run  func(scale exp.Scale, seed int64) (string, []exp.BenchCell)
}

// text adapts a render-only experiment (no benchmark cells).
func text(fn func(scale exp.Scale, seed int64) string) func(exp.Scale, int64) (string, []exp.BenchCell) {
	return func(s exp.Scale, seed int64) (string, []exp.BenchCell) { return fn(s, seed), nil }
}

// experiments builds the registry. workers sets the trial-level
// parallelism of the fleet sweeps (1 = sequential; results are
// byte-identical for every value).
func experiments(workers int) []experiment {
	return []experiment{
		{"table2", "LossRadar requirements vs switch capabilities (§2.3)",
			text(func(exp.Scale, int64) string { return exp.Table2() })},
		{"fig2", "NetSeer required memory vs link latency (§2.3)",
			text(func(exp.Scale, int64) string { return exp.Figure2() })},
		{"fig7", "dedicated-counter accuracy & speed heatmaps (§5.1.1)",
			text(func(s exp.Scale, seed int64) string { return exp.Figure7(s, seed).Render() })},
		{"fig8", "minimum entry size per zooming speed (§5.1.2)",
			text(func(s exp.Scale, seed int64) string { return exp.Figure8(s, seed).Render() })},
		{"fig9a", "hash-tree heatmaps, single-entry failures (§5.1.2)",
			text(func(s exp.Scale, seed int64) string { return exp.Figure9Single(s, seed).Render() })},
		{"fig9b", "hash-tree heatmaps, multi-entry failures (§5.1.2)",
			text(func(s exp.Scale, seed int64) string { return exp.Figure9Multi(s, seed).Render() })},
		{"uniform", "uniform-failure classification (§5.1.3)",
			text(func(s exp.Scale, seed int64) string {
				r := exp.UniformFailures(s, seed)
				var b strings.Builder
				b.WriteString("== §5.1.3 uniform failures ==\n")
				for i, loss := range r.LossRates {
					fmt.Fprintf(&b, "loss %-5s detected=%v latency=%.2fs\n",
						exp.LossLabel(loss), r.Detected[i], r.Latency[i])
				}
				return b.String()
			})},
		{"table3", "FANcY on CAIDA-like traces (§5.2)",
			text(func(s exp.Scale, seed int64) string { return exp.Table3(s, seed).Render() })},
		{"base", "comparison to simple designs (§5.2)",
			text(func(s exp.Scale, seed int64) string { return exp.BaselineComparison(s, seed).Render() })},
		{"overhead", "control and tagging overhead (§5.3)",
			text(func(exp.Scale, int64) string { return exp.Overhead().Render() })},
		{"table4", "Tofino hardware resource usage (§6)",
			text(func(exp.Scale, int64) string { return exp.Table4() })},
		{"fig10", "selective fast-rerouting case study (§6.1)",
			text(func(s exp.Scale, seed int64) string { return exp.Figure10(s, seed).Render() })},
		{"fleet", "ISP-wide fleet: Abilene gray-link localization + gated reroute",
			func(s exp.Scale, seed int64) (string, []exp.BenchCell) {
				r := exp.FleetAbileneWorkers(s, seed, false, workers)
				return r.Render(), r.BenchCells(seed)
			}},
		{"fleet-chaos", "fleet survivability: localization vs mgmt-plane loss + correlator crash",
			text(func(s exp.Scale, seed int64) string { return exp.FleetChaos(s, seed).Render() })},
		{"fleet-verified", "fleet localization sweep with the verified-commit gate on",
			func(s exp.Scale, seed int64) (string, []exp.BenchCell) {
				r := exp.FleetAbileneWorkers(s, seed, true, workers)
				return r.Render(), r.BenchCells(seed)
			}},
		{"verified-reroute", "verified reroute: concurrent-failure chaos suite + check latency",
			func(s exp.Scale, seed int64) (string, []exp.BenchCell) {
				r := exp.VerifiedReroute(s, seed)
				epoch := time.Now()
				cells := append(r.BenchCells(), exp.VerifyLatencyCell(seed,
					func() float64 { return time.Since(epoch).Seconds() }))
				return r.Render(), cells
			}},
		{"hh-churn", "churning heavy hitters: dynamic vs static dedicated-counter allocation",
			func(s exp.Scale, seed int64) (string, []exp.BenchCell) {
				r := exp.HHChurn(s, seed)
				return r.Render(), r.BenchCells()
			}},
		{"fig11", "tree parameter sensitivity (Appendix D)",
			text(func(s exp.Scale, seed int64) string { return exp.Figure11(s, seed).Render() })},
		{"table5", "synthesized trace statistics (Appendix C)",
			text(func(s exp.Scale, _ int64) string { return exp.Table5(s) })},
		{"abl-strawman", "ablation: stop-and-wait vs §4.1 strawman",
			text(func(s exp.Scale, seed int64) string { return exp.AblationStrawman(s, seed).Render() })},
		{"abl-select", "ablation: zoom counter selection policy",
			text(func(s exp.Scale, seed int64) string { return exp.AblationSelection(s, seed).Render() })},
		{"abl-blink", "ablation: Blink vs FANcY on minority-flow failures",
			text(func(s exp.Scale, seed int64) string { return exp.AblationBlink(s, seed).Render() })},
		{"sweep-freq", "exchange-frequency sensitivity (§5.1.1 text)",
			text(func(s exp.Scale, seed int64) string { return exp.ExchangeFrequencySweep(s, seed).Render() })},
		{"sweep-delay", "link-delay sensitivity (§5 text)",
			text(func(s exp.Scale, seed int64) string { return exp.DelaySweep(s, seed).Render() })},
	}
}

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		expt      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		full      = flag.Bool("full", false, "paper-scale parameters (slow)")
		seed      = flag.Int64("seed", 20220822, "random seed")
		benchJSON = flag.String("bench-json", "", "write benchmark cells (TTL medians + wall-clock) to this JSON file")
		workers   = flag.Int("workers", 1, "trial-level parallelism of the fleet sweeps (same results at any value)")
	)
	flag.Parse()
	if *workers < 1 {
		*workers = 1
	}

	all := experiments(*workers)
	if *list {
		for _, e := range all {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}

	scale := exp.Quick
	if *full {
		scale = exp.Full
	}

	want := map[string]bool{}
	runAll := *expt == "all"
	if !runAll {
		for _, name := range strings.Split(*expt, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.name] = true
	}
	var unknown []string
	for name := range want {
		if !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiments: %s (use -list)\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	var cells []exp.BenchCell
	for _, e := range all {
		if !runAll && !want[e.name] {
			continue
		}
		start := time.Now()
		out, ec := e.run(scale, *seed)
		wall := time.Since(start).Seconds()
		for i := range ec {
			ec[i].WallSeconds = wall
		}
		cells = append(cells, ec...)
		fmt.Println(out)
		fmt.Printf("[%s: %s scale, %.1fs]\n\n", e.name, scale, wall)
	}
	if *benchJSON != "" {
		if err := exp.WriteBenchJSON(*benchJSON, cells); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d benchmark cells to %s\n", len(cells), *benchJSON)
	}
}
