// Command fancy-sim runs one ad-hoc gray-failure scenario on the canonical
// monitored link and reports what FANcY detected.
//
// Usage:
//
//	fancy-sim -entries 5 -dedicated 2 -rate 2e6 -loss 0.1 -fail-at 2s -duration 10s
//
// It creates `entries` entries with `rate` bps of UDP traffic each (the
// first `dedicated` of them high priority), injects a gray failure on the
// listed failing entries (default: entry 0) at fail-at, and prints every
// detector event plus the final flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/telemetry"
)

func main() {
	var (
		entries   = flag.Int("entries", 5, "number of entries with traffic")
		dedicated = flag.Int("dedicated", 2, "entries tracked by dedicated counters")
		rate      = flag.Float64("rate", 2e6, "traffic per entry (bps)")
		loss      = flag.Float64("loss", 1.0, "failure drop probability (0..1)")
		failAt    = flag.Duration("fail-at", 2*time.Second, "failure start time")
		duration  = flag.Duration("duration", 10*time.Second, "simulation length")
		failList  = flag.String("fail", "0", "comma-separated failing entry indices")
		uniform   = flag.Bool("uniform", false, "uniform link loss instead of per-entry")
		delay     = flag.Duration("delay", 10*time.Millisecond, "inter-switch link delay")
		width     = flag.Int("width", 190, "tree width")
		depth     = flag.Int("depth", 3, "tree depth")
		split     = flag.Int("split", 2, "tree split")
		zoom      = flag.Duration("zoom", 200*time.Millisecond, "zooming interval")
		exchange  = flag.Duration("exchange", 50*time.Millisecond, "dedicated exchange interval")
		seed      = flag.Int64("seed", 1, "random seed")
		watch     = flag.Bool("watch", false, "stream telemetry samples during the run")
		pool      = flag.Bool("pool", true, "recycle data packets through a pool (allocation-free datapath)")

		chaosCorrupt = flag.Float64("chaos-corrupt", 0, "probability of flipping a bit in each control message (both directions)")
		chaosDup     = flag.Float64("chaos-dup", 0, "probability of duplicating each delivered packet")
		chaosReorder = flag.Float64("chaos-reorder", 0, "probability of jittering each packet (≤1ms extra delay)")
		chaosFlapAt  = flag.Duration("chaos-flap-at", 0, "take the link fully down at this time (0: never)")
		chaosFlapFor = flag.Duration("chaos-flap-for", time.Second, "outage length for -chaos-flap-at")
	)
	flag.Parse()

	if *dedicated > *entries {
		fmt.Fprintln(os.Stderr, "-dedicated cannot exceed -entries")
		os.Exit(2)
	}

	hp := make([]fancy.EntryID, *dedicated)
	for i := range hp {
		hp[i] = fancy.EntryID(i)
	}
	cfg := fancy.Config{
		HighPriority:     hp,
		Tree:             tree.Params{Width: *width, Depth: *depth, Split: *split, Pipelined: true},
		TreeSeed:         uint64(*seed),
		ZoomingInterval:  fancy.Time(*zoom),
		ExchangeInterval: fancy.Time(*exchange),
	}

	s := fancy.NewSim(*seed)
	ml, err := fancy.NewMonitoredLinkOpts(s, cfg, fancy.MonitoredLinkOptions{Delay: fancy.Time(*delay)})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("layout: %s\n", ml.Upstream.Layout)
	var pktPool *fancy.PacketPool
	if *pool {
		pktPool = ml.UsePool()
	}

	if *watch {
		srv := telemetry.NewServer(s, ml.Upstream, ml.MonitorPort())
		for _, path := range []string{
			fmt.Sprintf("/fancy/ports/%d/flags/count", ml.MonitorPort()),
			fmt.Sprintf("/fancy/ports/%d/sessions/completed", ml.MonitorPort()),
		} {
			if _, err := srv.Sample(path, fancy.Second, func(u telemetry.Update) {
				fmt.Printf("[telemetry %v] %s = %v\n", u.Time, u.Path, u.Value)
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	ml.OnEvent(func(ev fancy.Event) { fmt.Println(ev) })
	stop := fancy.Time(*duration)
	for i := 0; i < *entries; i++ {
		ml.UDP(fancy.EntryID(i), *rate, 0, stop)
	}

	var failing []fancy.EntryID
	for _, part := range strings.Split(*failList, ",") {
		idx, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || idx < 0 || idx >= *entries {
			fmt.Fprintf(os.Stderr, "bad failing entry %q\n", part)
			os.Exit(2)
		}
		failing = append(failing, fancy.EntryID(idx))
	}
	if *uniform {
		ml.FailUniform(fancy.Time(*failAt), *loss)
		fmt.Printf("injecting uniform %.1f%% loss at %v\n", *loss*100, *failAt)
	} else {
		ml.FailEntries(fancy.Time(*failAt), *loss, failing...)
		fmt.Printf("injecting %.1f%% loss on entries %v at %v\n", *loss*100, failing, *failAt)
	}

	var chaoses []*fancy.Chaos
	if *chaosCorrupt > 0 || *chaosDup > 0 || *chaosReorder > 0 || *chaosFlapAt > 0 {
		for _, c := range []*fancy.Chaos{ml.ChaosForward(), ml.ChaosReverse()} {
			c.CorruptCtl = *chaosCorrupt
			c.Duplicate = *chaosDup
			c.Reorder = *chaosReorder
			if *chaosFlapAt > 0 {
				c.Start = fancy.Time(*chaosFlapAt)
				c.DownFor = fancy.Time(*chaosFlapFor)
				c.UpFor = stop // single outage
			}
			chaoses = append(chaoses, c)
		}
		fmt.Printf("chaos: corrupt=%.0f%% dup=%.0f%% reorder=%.0f%% flap=%v/%v\n",
			*chaosCorrupt*100, *chaosDup*100, *chaosReorder*100, *chaosFlapAt, *chaosFlapFor)
	}

	wallStart := time.Now()
	s.Run(stop)
	wall := time.Since(wallStart).Seconds()

	// Stdout is the deterministic transcript (same seed => byte-identical),
	// so host wall-clock timing goes to stderr.
	fmt.Printf("\nengine: %d events executed\n", s.Executed)
	if pktPool != nil && pktPool.Gets > 0 {
		fmt.Printf("packet pool: %d gets, %.1f%% recycled\n",
			pktPool.Gets, 100*float64(pktPool.Reuses)/float64(pktPool.Gets))
	}
	fmt.Fprintf(os.Stderr, "wall: %.2fs (%.1f Mev/s)\n", wall, float64(s.Executed)/wall/1e6)

	fmt.Println("\nfinal flags:")
	for i := 0; i < *entries; i++ {
		e := fancy.EntryID(i)
		kind := "tree"
		if i < *dedicated {
			kind = "dedicated"
		}
		fmt.Printf("  entry %d (%s): flagged=%v\n", i, kind, ml.Flagged(e))
	}
	fmt.Printf("\nsessions completed: %d, control messages: %d (%d bytes)\n",
		ml.Upstream.SessionsCompleted(ml.MonitorPort()),
		ml.Upstream.CtlMsgsSent, ml.Upstream.CtlBytesSent)
	st := ml.Upstream.Stats()
	fmt.Printf("robustness: %d corrupted ctl dropped, %d retransmissions, link down/up %d/%d, %d sessions discarded (congestion)\n",
		st.CtlCorrupted, st.Retransmits, st.LinkDownEvents, st.LinkUpEvents, st.SessionsDiscarded)
	for i, c := range chaoses {
		dir := []string{"forward", "reverse"}[i]
		fmt.Printf("chaos %s: %+v\n", dir, c.Stats)
	}
}
