// Command fancy-resources prints the Tofino hardware resource report
// (Table 4 of the paper) and the register-memory layout of a FANcY
// deployment, optionally for custom dimensions.
//
// Usage:
//
//	fancy-resources
//	fancy-resources -dedicated 1024 -width 250
//	fancy-resources -budget 20000 -entries 500   # input translation check
//	fancy-resources -hh-stages 3 -hh-width 64    # heavy-hitter stage sizing
//
// With -hh-stages > 0 the report includes the heavy-hitter sketch stage
// (internal/hh) and the command exits non-zero if the full deployment no
// longer fits the Tofino-1 envelope.
package main

import (
	"flag"
	"fmt"
	"os"

	"fancy"
	"fancy/internal/exp"
	"fancy/internal/fancy/tree"
	"fancy/internal/p4gen"
	"fancy/internal/tofino"
)

func main() {
	var (
		dedicated = flag.Int("dedicated", 512, "dedicated entries per port")
		width     = flag.Int("width", 190, "tree width")
		ports     = flag.Int("ports", 32, "switch ports")
		budget    = flag.Int("budget", 0, "per-port memory budget in bytes (runs input translation)")
		entries   = flag.Int("entries", 500, "high-priority entries for input translation")
		emitP4    = flag.Bool("p4", false, "emit the P4_16 program skeleton instead of the report")
		hhStages  = flag.Int("hh-stages", 3, "heavy-hitter sketch stages (0 = stage not deployed)")
		hhWidth   = flag.Int("hh-width", 64, "heavy-hitter sketch slots per stage")
	)
	flag.Parse()

	if *emitP4 {
		hp := make([]fancy.EntryID, *dedicated)
		for i := range hp {
			hp[i] = fancy.EntryID(i)
		}
		cfg := fancy.Config{
			HighPriority: hp,
			Tree:         tree.Params{Width: *width, Depth: 3, Split: 1, Pipelined: false},
		}
		src, err := p4gen.Generate(cfg, p4gen.Options{Ports: *ports, Reroute: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(src)
		return
	}

	if *budget > 0 {
		hp := make([]fancy.EntryID, *entries)
		for i := range hp {
			hp[i] = fancy.EntryID(i)
		}
		cfg := fancy.Config{HighPriority: hp, MemoryBytes: *budget}
		layout, err := cfg.Plan()
		if err != nil {
			fmt.Fprintf(os.Stderr, "input translation failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("input translation for %d B/port, %d high-priority entries:\n  %s\n\n",
			*budget, *entries, layout)
	}

	fmt.Println(exp.Table4())

	d := tofino.PaperConfig()
	d.DedicatedPerPort = *dedicated
	d.MachinesPerPort = *dedicated
	d.TreeWidth = *width
	d.Ports = *ports
	d.HHStages = *hhStages
	d.HHWidth = *hhWidth
	fmt.Printf("register memory for %d ports, %d dedicated/port, width-%d tree:\n", *ports, *dedicated, *width)
	fmt.Printf("  state machines:     %8.1f KB\n", float64(d.StateMachineBytes())/1024)
	fmt.Printf("  dedicated counters: %8.1f KB\n", float64(d.DedicatedCounterBytes())/1024)
	fmt.Printf("  hash-based tree:    %8.1f KB\n", float64(d.TreeBytes())/1024)
	fmt.Printf("  rerouting:          %8.1f KB\n", float64(d.RerouteBytes())/1024)
	if d.HHStages > 0 {
		fmt.Printf("  heavy-hitter stage: %8.1f KB (%d-stage x %d-slot sketch/port)\n",
			float64(d.HeavyHitterBytes())/1024, d.HHStages, d.HHWidth)
	}
	fmt.Printf("  total:              %8.1f KB (%.1f KB with rerouting)\n",
		float64(d.TotalBytes(false))/1024, float64(d.TotalBytes(true))/1024)

	if d.HHStages > 0 {
		chip := tofino.Tofino32()
		r := chip.FancyResources(d, true)
		u := chip.Utilization(r)
		fmt.Printf("\nfull deployment + heavy-hitter stage on %s:\n", chip.Name)
		fmt.Printf("  sram=%.1f%% salu=%.1f%% vliw=%.1f%% tcam=%.1f%% hash=%.1f%% txbar=%.1f%% exbar=%.1f%%\n",
			u.SRAM*100, u.SALU*100, u.VLIW*100, u.TCAM*100,
			u.HashBits*100, u.TernaryXbar*100, u.ExactXbar*100)
		if !chip.Fits(r) {
			fmt.Fprintln(os.Stderr, "fancy-resources: deployment does NOT fit the Tofino-1 envelope")
			os.Exit(1)
		}
		fmt.Println("  fits the Tofino-1 envelope")
	}
}
