// Command fancy-vet runs the repo-specific static-analysis suite that
// enforces simulator determinism and concurrency invariants:
//
//	walltime        no wall-clock access in simulation-facing packages
//	globalrand      no global math/rand anywhere
//	maporder        no order-sensitive map iteration without sorted keys
//	floateq         no floating-point == / != in stats, exp and fancy
//	lockedcallback  no callback invocation while the receiver's mutex is held
//
// Usage:
//
//	fancy-vet [-json] [packages]
//
// Packages are module-relative directories, optionally ending in /...;
// the default is ./... (the whole module). Findings print as
// file:line:col: analyzer: message; -json emits them as a JSON array.
// Exit status is 1 if there are findings, 2 on load errors, 0 otherwise.
//
// A finding is suppressed only by an inline directive with a reason:
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above. Directives with an empty reason
// or an unknown analyzer name are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fancy/internal/lint"
)

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fancy-vet [-json] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	mod, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fancy-vet:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(mod, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fancy-vet:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.Analyzers())

	cwd, _ := os.Getwd()
	display := func(file string) string {
		if cwd == "" {
			return file
		}
		if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
			return rel
		}
		return file
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     display(f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "fancy-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n",
				display(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
