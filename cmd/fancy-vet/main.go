// Command fancy-vet runs the repo-specific static-analysis suite that
// enforces simulator determinism, ownership and concurrency invariants:
//
//	walltime        no wall-clock access in simulation-facing packages
//	globalrand      no global math/rand anywhere
//	maporder        no order-sensitive map or sync.Map.Range iteration without sorted keys
//	floateq         no floating-point == / != in stats, exp and fancy
//	lockedcallback  no callback invocation while the receiver's mutex is held
//	poolsafe        no use of a pooled object after Put, no double Put, no Put after escape
//	borrowescape    no UnmarshalInto scratch alias escaping the borrowing function
//	shardsafe       no cross-shard writes from shard callbacks that bypass the barrier merge
//
// Usage:
//
//	fancy-vet [-json] [-github] [packages]
//
// Packages are module-relative directories, optionally ending in /...;
// the default is ./... (the whole module). Findings print as
// file:line:col: analyzer: message; -json emits them as a JSON array;
// -github emits GitHub Actions ::error workflow commands so findings show
// up as inline annotations on the pull request.
// Exit status is 1 if there are findings, 2 on load errors, 0 otherwise.
//
// A finding is suppressed only by an inline directive with a reason:
//
//	//lint:allow <analyzer> <reason>
//
// trailing the offending line, or on a comment line directly above it.
// Directives with an empty reason or an unknown analyzer name are
// themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fancy/internal/lint"
)

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ghEscape escapes a workflow-command message: GitHub Actions parses %, CR
// and LF as command delimiters, so they are URL-style encoded (% first, or
// the escapes themselves would be re-escaped).
func ghEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghEscapeProp escapes a workflow-command property value, which additionally
// treats commas and colons as delimiters.
func ghEscapeProp(s string) string {
	s = ghEscape(s)
	s = strings.ReplaceAll(s, ",", "%2C")
	s = strings.ReplaceAll(s, ":", "%3A")
	return s
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	githubOut := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fancy-vet [-json] [-github] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	mod, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fancy-vet:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(mod, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fancy-vet:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.Analyzers())

	cwd, _ := os.Getwd()
	display := func(file string) string {
		if cwd == "" {
			return file
		}
		if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
			return rel
		}
		return file
	}
	switch {
	case *jsonOut:
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     display(f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "fancy-vet:", err)
			os.Exit(2)
		}
	case *githubOut:
		// Workflow commands must use forward slashes so the annotation
		// anchors to the file in the PR diff view.
		for _, f := range findings {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=%s::%s\n",
				ghEscapeProp(filepath.ToSlash(display(f.Pos.Filename))), f.Pos.Line, f.Pos.Column,
				ghEscapeProp("fancy-vet "+f.Analyzer), ghEscape(f.Message))
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n",
				display(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
