// Command fancy-benchgate is the CI benchmark regression gate: it compares
// a freshly generated benchmark artifact against the committed baseline and
// exits non-zero when a cell regressed beyond tolerance.
//
// Usage:
//
//	fancy-benchgate -baseline BENCH_baseline.json -current BENCH_fleet.json
//	fancy-benchgate -ttl-tolerance 0.25 -wall-tolerance 0.25 ...
//
// TTL medians are simulated time and compared strictly; wall time is
// compared as share-of-total so machine speed cancels; wallclock-marked
// latency cells are held to the paper's absolute localization budget. See
// internal/exp.GateBench for the exact rules. Refresh the baseline by
// copying the current artifact over it in the same change that explains
// the regression.
package main

import (
	"flag"
	"fmt"
	"os"

	"fancy/internal/exp"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_baseline.json", "committed baseline artifact")
		current  = flag.String("current", "BENCH_fleet.json", "freshly generated artifact")
		ttlTol   = flag.Float64("ttl-tolerance", 0.25, "fractional TTL-median tolerance (0.25 = +25%)")
		wallTol  = flag.Float64("wall-tolerance", 0.25, "fractional wall-share tolerance")
	)
	flag.Parse()

	base, err := exp.ReadBenchJSON(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cur, err := exp.ReadBenchJSON(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := exp.GateBench(base, cur, *ttlTol, *wallTol)
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "benchmark regression gate: %d finding(s)\n", len(findings))
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchmark gate ok: %d baseline cell(s) within tolerance (ttl %+.0f%%, wall %+.0f%%)\n",
		len(base), *ttlTol*100, *wallTol*100)
}
