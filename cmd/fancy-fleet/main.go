// Command fancy-fleet runs an ISP-wide FANcY deployment on the Abilene
// topology: a detector pair on every directed link, the central correlator
// of internal/fleet, one injected gray link, and a protected entry that is
// fast-rerouted once the link is localized.
//
// Usage:
//
//	fancy-fleet                              # defaults: seattle->sunnyvale
//	fancy-fleet -link chicago->newyork -loss 0.5 -duration 10s
//	fancy-fleet -events                      # include the full event log
//	fancy-fleet -mgmt-loss 0.2 -crash-correlator 2.1s   # survivability drill
//	fancy-fleet -mgmt-loss 0.1 -partition seattle       # degraded-mode drill
//	fancy-fleet -mgmt-loss 0.2 -replicas 3 -kill-leader 2.1s   # failover drill
//	fancy-fleet -hh                          # dynamic dedicated-counter allocation
//	fancy-fleet -verify                      # verified-commit gate on every reroute
//	fancy-fleet -inject-loop                 # concurrent failures whose backups compose into a loop
//	fancy-fleet -inject-loop -verify         # ...which the gate rejects and repairs
//
// The run is deterministic for a given flag set; the fleet report at the
// end is the aggregate snapshot (per-link health, localization times,
// suppressed false alarms, detector robustness counters).
//
// The -mgmt-* flags interpose the simulated management network of
// internal/mgmt between every switch agent and the correlator;
// -crash-correlator and -partition then exercise the survivability story
// (checkpoint/restart recovery, degraded-mode local protection).
// -replicas runs the correlator as a consensus group over that same
// management plane; -kill-leader assassinates the active leader mid-run and
// recovery is a phi-driven election plus replicated-log restore.
//
// -hh swaps the static dedicated pin for the in-dataplane heavy-hitter
// stage: a churning background workload shares the path, every detector
// sketches its egress traffic, and the per-switch allocation loop promotes
// the observed heavy hitters (the target entry among them) into dedicated
// counters at runtime. The closing report gains the hh-alloc line.
//
// -verify puts the verified-commit gate in front of every fleet-wide
// reroute: the correlator checks each backup flip against an incremental
// atom model and rejects, repairs or holds unsafe ones. -inject-loop swaps
// the scenario for the concurrent-failure composition (traffic
// washington→kansascity, atlanta and houston protected with backups
// through each other, both their primary egress links failed): without
// -verify the demo installs the atlanta↔houston loop, with it the gate
// rejects houston's flip and repairs via losangeles. Either way the run
// closes with a forwarding-state audit over every atom.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/fleet"
	"fancy/internal/hh"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/topo"
	"fancy/internal/traffic"
	"fancy/internal/verify"
)

func main() {
	var (
		link     = flag.String("link", "seattle->sunnyvale", "directed link to fail (from->to)")
		loss     = flag.Float64("loss", 1.0, "per-entry drop probability on the failed link (0..1)")
		rate     = flag.Float64("rate", 2e6, "target-entry traffic (bps)")
		failAt   = flag.Duration("fail-at", 2*time.Second, "failure start time")
		duration = flag.Duration("duration", 8*time.Second, "simulation length")
		seed     = flag.Int64("seed", 42, "random seed")
		events   = flag.Bool("events", false, "print the full fleet event log")

		mgmtLoss   = flag.Float64("mgmt-loss", 0, "management-network datagram loss probability (0..1); any -mgmt-* flag enables the simulated management plane")
		mgmtDelay  = flag.Duration("mgmt-delay", 0, "management-network one-way delay (0 = default 500µs)")
		mgmtJitter = flag.Duration("mgmt-jitter", 0, "management-network delay jitter bound")
		mgmtDup    = flag.Float64("mgmt-dup", 0, "management-network duplication probability (0..1)")

		crashCorr = flag.Duration("crash-correlator", 0, "crash the correlator at this time (0 = never)")
		crashDown = flag.Duration("crash-downtime", 300*time.Millisecond, "correlator downtime before restart")
		partition = flag.String("partition", "", "switch to partition from the management plane mid-run (failure start → heal at fail start + half the remaining run)")

		replicas   = flag.Int("replicas", 0, "correlator replicas (0/1 = single instance, 3+ = consensus group; needs the management plane)")
		killLeader = flag.Duration("kill-leader", 0, "crash the active consensus leader at this time (0 = never; needs -replicas)")

		hhMode  = flag.Bool("hh", false, "dynamic dedicated-counter allocation: heavy-hitter stage + churning background workload instead of a static pin")
		hhSlots = flag.Int("hh-slots", 8, "dedicated-counter slots per port available to the allocation loop (needs -hh)")

		verifyGate = flag.Bool("verify", false, "verified-commit gate: check every reroute against the atom-based forwarding model before committing")
		injectLoop = flag.Bool("inject-loop", false, "concurrent-failure demo: backups that compose into a forwarding loop (overrides -link; pair with -verify to see the gate reject and repair it)")
	)
	flag.Parse()

	srcAt, dstAt := "", ""
	if *injectLoop {
		// The composed scenario: traffic washington→kansascity rides
		// atlanta→indianapolis; atlanta's backup detours via houston,
		// houston's via atlanta, and both primary egress links fail.
		*link = "atlanta->indianapolis"
		srcAt, dstAt = "washington", "kansascity"
	}
	from, to, ok := strings.Cut(*link, "->")
	if !ok {
		fmt.Fprintf(os.Stderr, "fancy-fleet: -link must look like from->to, got %q\n", *link)
		os.Exit(2)
	}
	if srcAt == "" {
		srcAt, dstAt = from, to
	}

	s := sim.New(*seed)
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "hsrc", Attach: srcAt},
		{Name: "hdst", Attach: dstAt},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fancy-fleet: %v\n", err)
		os.Exit(2)
	}
	if n.Direction(from, to) == nil {
		fmt.Fprintf(os.Stderr, "fancy-fleet: no %s link in Abilene\n", *link)
		os.Exit(2)
	}
	const entry = netsim.EntryID(10)
	dur := sim.Time(*duration)
	routes := map[netsim.EntryID]string{entry: "hdst"}
	var churn *traffic.ChurnSchedule
	if *hhMode {
		// The background entry set includes the target entry; its dedicated
		// source keeps it in the head, so the allocation loop promotes it.
		churn = traffic.NewChurnSchedule(traffic.ChurnConfig{
			Entries:       32,
			AggregateBps:  10e6,
			ShiftInterval: dur / 2,
			Epochs:        2,
			HotRanks:      *hhSlots,
			Seed:          *seed,
		})
		for i := 0; i < churn.Config().Entries; i++ {
			routes[netsim.EntryID(i)] = "hdst"
		}
	}
	if err := n.InstallShortestPaths(routes); err != nil {
		fmt.Fprintf(os.Stderr, "fancy-fleet: %v\n", err)
		os.Exit(2)
	}
	cfg := fleet.Config{Fancy: fancy.Config{
		HighPriority: []netsim.EntryID{entry},
		Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
		TreeSeed:     3,
	}}
	if *hhMode {
		cfg.Fancy.HighPriority = nil // dedicated counters come from the allocation loop
		cfg.HH = &fleet.HHFleetConfig{
			Sketch:       hh.Params{Stages: 3, Width: 32, Seed: uint64(*seed)},
			DynamicSlots: *hhSlots,
		}
	}
	mgmtWanted := *mgmtLoss > 0 || *mgmtDelay > 0 || *mgmtJitter > 0 || *mgmtDup > 0 ||
		*crashCorr > 0 || *partition != "" || *replicas > 1 || *killLeader > 0
	if mgmtWanted {
		cfg.Mgmt = &mgmt.Config{
			Loss:      *mgmtLoss,
			Delay:     sim.Time(*mgmtDelay),
			Jitter:    sim.Time(*mgmtJitter),
			Duplicate: *mgmtDup,
		}
		cfg.Replicas = *replicas
	}
	if *killLeader > 0 && *replicas <= 1 {
		fmt.Fprintln(os.Stderr, "fancy-fleet: -kill-leader needs -replicas > 1")
		os.Exit(2)
	}
	if *verifyGate {
		cfg.Verify = &fleet.VerifyConfig{}
	}
	f, err := fleet.New(s, n, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fancy-fleet: %v\n", err)
		os.Exit(2)
	}
	f.OnEvent = func(ev fleet.Event) {
		if *events {
			fmt.Println(ev)
			return
		}
		// Headline events only.
		switch ev.Kind {
		case fleet.EventLocalized, fleet.EventSuppressed, fleet.EventRerouted,
			fleet.EventLinkFlapping, fleet.EventRerouteRejected,
			fleet.EventRerouteRepaired, fleet.EventRerouteHeld,
			fleet.EventVerifyFallback:
			fmt.Println(ev)
		}
	}

	// Protect the target entry at the failed link's upstream switch, if a
	// provably loop-free detour exists.
	if *injectLoop {
		protect := func(sw, primaryTo, backupTo string) {
			route := n.Switches[sw].Routes.InsertEntry(entry, netsim.Route{
				Port:   n.PortOf[sw][primaryTo],
				Backup: n.PortOf[sw][backupTo],
			})
			if err := f.Protect(sw, entry, route); err != nil {
				fmt.Fprintf(os.Stderr, "fancy-fleet: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("protecting entry %d at %s: primary via %s, backup via %s\n",
				entry, sw, primaryTo, backupTo)
		}
		protect("atlanta", "indianapolis", "houston")
		protect("houston", "kansascity", "atlanta")
	} else if nb, ok := loopFreeBackup(n, from, to); ok {
		route := n.Switches[from].Routes.InsertEntry(entry, netsim.Route{
			Port:   n.PortOf[from][to],
			Backup: n.PortOf[from][nb],
		})
		if err := f.Protect(from, entry, route); err != nil {
			fmt.Fprintf(os.Stderr, "fancy-fleet: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("protecting entry %d at %s: primary via %s, backup via %s\n",
			entry, from, to, nb)
	} else {
		fmt.Printf("no loop-free detour from %s avoiding %s: running detection only\n", from, to)
	}

	traffic.NewUDPSource(s, n.Hosts["hsrc"], netsim.FlowID(entry), entry,
		netsim.EntryAddr(entry, 1), *rate, 1000, dur).Start()
	if churn != nil {
		srcs := churn.Launch(s, n.Hosts["hsrc"])
		fmt.Printf("heavy-hitter stage: %d dynamic slots/port, churn background: %d entries, %d sources, %d epochs\n",
			*hhSlots, churn.Config().Entries, srcs, churn.Epochs())
	}
	n.Direction(from, to).SetFailure(
		netsim.FailEntries(*seed+1, sim.Time(*failAt), *loss, entry))
	if *injectLoop {
		n.Direction("houston", "kansascity").SetFailure(
			netsim.FailEntries(*seed+2, sim.Time(*failAt), *loss, entry))
		fmt.Printf("also failing houston->kansascity at %v: both backups now compose into a loop\n",
			*failAt)
	}
	if *verifyGate {
		fmt.Println("verified-commit gate: every reroute checked against the atom model before committing")
	}

	if *crashCorr > 0 {
		if !mgmtWanted {
			fmt.Fprintln(os.Stderr, "fancy-fleet: -crash-correlator needs the management plane")
			os.Exit(2)
		}
		s.ScheduleAt(sim.Time(*crashCorr), f.CrashCorrelator)
		s.ScheduleAt(sim.Time(*crashCorr+*crashDown), f.RestartCorrelator)
		fmt.Printf("correlator crash at %v, restart at %v\n", *crashCorr, *crashCorr+*crashDown)
	}
	if *killLeader > 0 {
		killed := -1
		s.ScheduleAt(sim.Time(*killLeader), func() { killed = f.KillLeader() })
		s.ScheduleAt(sim.Time(*killLeader+*crashDown), func() { f.RestartReplica(killed) })
		fmt.Printf("leader kill at %v, dead replica rejoins at %v\n", *killLeader, *killLeader+*crashDown)
	}
	if *partition != "" {
		if _, ok := n.Switches[*partition]; !ok {
			fmt.Fprintf(os.Stderr, "fancy-fleet: no switch %q to partition\n", *partition)
			os.Exit(2)
		}
		cut := sim.Time(*failAt)
		heal := cut + (dur-cut)/2
		sw := *partition
		s.ScheduleAt(cut, func() { f.PartitionSwitch(sw) })
		s.ScheduleAt(heal, func() { f.HealSwitch(sw) })
		fmt.Printf("partitioning %s off the management plane at %v, healing at %v\n", sw, cut, heal)
	}
	if mgmtWanted {
		fmt.Printf("management plane: loss=%.0f%% dup=%.0f%% delay=%v jitter=%v\n",
			*mgmtLoss*100, *mgmtDup*100, *mgmtDelay, *mgmtJitter)
	}
	if *replicas > 1 {
		fmt.Printf("correlator: %d-replica consensus group, leader %s\n", *replicas, f.Leader())
	}

	fmt.Printf("failing %s at %v (loss %.0f%%), %d switches / %d directed links monitored\n\n",
		*link, *failAt, *loss*100, len(n.Switches), len(n.DirectedLinks()))
	s.Run(dur)

	fmt.Println()
	fmt.Print(f.Snapshot().Report())

	// Close with a forwarding-state audit: the gate's own model when
	// verifying, else a fresh snapshot of the final installed routes — the
	// latter is what exposes the loop the unverified -inject-loop run left
	// behind.
	audit := f.Verifier().Audit
	if !*verifyGate {
		audit = verify.NewModel(n).Audit
	}
	fmt.Printf("\npost-run forwarding audit: %s\n", audit())
}

// loopFreeBackup picks from's cheapest neighbor detour toward to that
// provably avoids the from→to link (same rule as the exp driver).
func loopFreeBackup(n *topo.Network, from, to string) (string, bool) {
	direct, ok := n.LinkDelay(from, to)
	if !ok {
		return "", false
	}
	best := ""
	var bestDelay sim.Time
	for _, nb := range n.Neighbors(from) {
		if nb == to {
			continue
		}
		detour, ok := n.PathDelay(nb, to)
		if !ok {
			continue
		}
		back, _ := n.LinkDelay(nb, from)
		if detour >= back+direct {
			continue
		}
		if best == "" || detour < bestDelay {
			best, bestDelay = nb, detour
		}
	}
	return best, best != ""
}
