// ISP backbone: partial FANcY deployment at border routers.
//
// Topology (all links 10 ms / 100 Gbps):
//
//	customers — PE1 ——— P1 ——— P2 ——— PE2 — peers
//	            (FANcY)  (plain)(plain)  (FANcY)
//
// Only the two provider-edge routers run FANcY (§4.3's incremental
// deployment): PE1 opens counting sessions whose control messages are
// routed through the plain transit routers to PE2. A gray failure on the
// P1→P2 link — two hops away from any FANcY box — is still detected and
// localized to the affected prefixes, though only at path granularity.
//
//	go run ./examples/isp_backbone
package main

import (
	"fmt"

	"fancy"
	"fancy/internal/netsim"
)

func main() {
	s := fancy.NewSim(7)

	customers := fancy.NewHost(s, "customers")
	peers := fancy.NewHost(s, "peers")
	pe1 := fancy.NewSwitch(s, "pe1", 2)
	p1 := fancy.NewSwitch(s, "p1", 2)
	p2 := fancy.NewSwitch(s, "p2", 2)
	pe2 := fancy.NewSwitch(s, "pe2", 2)

	core := netsim.LinkConfig{Delay: 10 * fancy.Millisecond, RateBps: 100e9}
	fancy.Connect(s, customers, 0, pe1, 0, core)
	fancy.Connect(s, pe1, 1, p1, 0, core)
	midLink := fancy.Connect(s, p1, 1, p2, 0, core)
	fancy.Connect(s, p2, 1, pe2, 0, core)
	fancy.Connect(s, pe2, 1, peers, 0, core)

	// Routing: everything forward by default, router loopbacks backward.
	pe1Addr := netsim.IPv4(10, 255, 0, 1)
	pe2Addr := netsim.IPv4(10, 255, 0, 4)
	for _, sw := range []*fancy.Switch{pe1, p1, p2, pe2} {
		sw.Routes.Insert(0, 0, fancy.Route{Port: 1, Backup: -1})
		sw.Routes.Insert(pe1Addr, 32, fancy.Route{Port: 0, Backup: -1})
	}
	customers.Default = netsim.PacketHandlerFunc(func(*fancy.Packet) {})
	peers.Default = netsim.PacketHandlerFunc(func(*fancy.Packet) {})

	// FANcY at the borders only. PE1 monitors its core-facing port with
	// PE2 as the remote counterpart.
	cfg := fancy.Config{
		HighPriority: []fancy.EntryID{100, 101}, // two big customer prefixes
		MemoryBytes:  20_000,
	}
	det1, err := fancy.NewDetector(s, pe1, cfg)
	if err != nil {
		panic(err)
	}
	det2, err := fancy.NewDetector(s, pe2, cfg)
	if err != nil {
		panic(err)
	}
	det1.SetOwnAddr(pe1Addr)
	det1.SetPeerAddr(1, pe2Addr)
	det2.SetOwnAddr(pe2Addr)
	det2.SetPeerAddr(0, pe1Addr)
	det2.ListenPort(0)
	det1.MonitorPort(1)

	det1.OnEvent = func(ev fancy.Event) {
		switch ev.Kind {
		case fancy.EventDedicated:
			fmt.Printf("%8.3fs  PE1: loss on the PE1→PE2 path for customer prefix %d\n",
				ev.Time.Seconds(), ev.Entry)
		case fancy.EventTreeLeaf:
			fmt.Printf("%8.3fs  PE1: loss on the PE1→PE2 path for best-effort path %v\n",
				ev.Time.Seconds(), ev.Path)
		case fancy.EventUniform:
			fmt.Printf("%8.3fs  PE1: uniform loss on the PE1→PE2 path\n", ev.Time.Seconds())
		}
	}

	// Traffic: the two customer prefixes plus best-effort background.
	send := func(entry fancy.EntryID, pps int) {
		gap := fancy.Second / fancy.Time(pps)
		var tick func()
		tick = func() {
			if s.Now() >= 12*fancy.Second {
				return
			}
			customers.Send(&fancy.Packet{Entry: entry,
				Dst: netsim.EntryAddr(entry, 1), Proto: netsim.ProtoUDP, Size: 1200})
			s.Schedule(gap, tick)
		}
		s.Schedule(0, tick)
	}
	send(100, 400)
	send(101, 400)
	for e := fancy.EntryID(200); e < 210; e++ {
		send(e, 100)
	}

	// The gray failure: a dirty fiber between the two transit routers
	// corrupts ≈5% of prefix 100's and one background prefix's packets.
	fmt.Println("injecting 5% loss for prefixes 100 and 203 on the P1→P2 link at t=3s")
	midLink.AB.SetFailure(netsim.FailEntries(99, 3*fancy.Second, 0.05, 100, 203))

	s.Run(12 * fancy.Second)

	fmt.Println("\nfinal state at PE1:")
	for _, e := range []fancy.EntryID{100, 101, 203, 207} {
		fmt.Printf("  prefix %d flagged: %v\n", e, det1.Flagged(1, e))
	}
	fmt.Println("\nNote: PE1 localizes the loss to (prefixes, PE1→PE2 path); pinpointing")
	fmt.Println("the P1→P2 hop requires FANcY on the transit routers too (§4.3).")
}
