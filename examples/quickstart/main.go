// Quickstart: detect a gray failure on a single monitored link.
//
// A dedicated (high-priority) entry and a best-effort entry carry traffic
// across the link; at t=2s a hardware bug starts dropping 10% of both
// entries' packets. FANcY flags the dedicated entry after one counter
// exchange (≈100 ms) and the best-effort entry after the hash-based tree
// zooms to a leaf (≈3 zooming intervals).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"fancy"
)

func main() {
	s := fancy.NewSim(1)

	ml := fancy.NewMonitoredLink(s, fancy.Config{
		HighPriority: []fancy.EntryID{10}, // e.g. the prefix of a big customer
		MemoryBytes:  20_000,              // 20 KB per port, the paper's budget
	})
	fmt.Printf("memory layout: %s\n\n", ml.Upstream.Layout)

	ml.OnEvent(func(ev fancy.Event) {
		switch ev.Kind {
		case fancy.EventDedicated:
			fmt.Printf("%8.3fs  dedicated counter flagged entry %d (lost %d packets)\n",
				ev.Time.Seconds(), ev.Entry, ev.Diff)
		case fancy.EventTreeZoomStart:
			fmt.Printf("%8.3fs  tree observed a root mismatch, zooming in...\n", ev.Time.Seconds())
		case fancy.EventTreeLeaf:
			fmt.Printf("%8.3fs  tree flagged hash path %v (lost %d packets)\n",
				ev.Time.Seconds(), ev.Path, ev.Diff)
		}
	})

	// 2 Mbps of UDP per entry for 10 seconds.
	ml.UDP(10, 2e6, 0, 10*fancy.Second)  // high priority
	ml.UDP(500, 2e6, 0, 10*fancy.Second) // best effort

	// The gray failure: 10% of both entries' packets silently dropped.
	ml.FailEntries(2*fancy.Second, 0.10, 10, 500)

	s.Run(10 * fancy.Second)

	fmt.Println()
	fmt.Printf("entry  10 flagged: %v (dedicated counter)\n", ml.Flagged(10))
	fmt.Printf("entry 500 flagged: %v (hash-based tree)\n", ml.Flagged(500))
	fmt.Printf("entry 600 flagged: %v (healthy, never sent)\n", ml.Flagged(600))
	fmt.Printf("\ncontrol overhead: %d messages, %d bytes in 10s\n",
		ml.Upstream.CtlMsgsSent, ml.Upstream.CtlBytesSent)
}
