// Full deployment: FANcY at every switch of the Abilene backbone.
//
// The paper's intended deployment (§4.3): every switch monitors every one
// of its links, so a gray failure anywhere is both detected AND localized
// to the exact switch port. This program builds the 11-node Abilene
// research backbone, routes traffic between Seattle and Atlanta over
// shortest paths, injects a gray failure on the Kansas City → Houston
// link for one prefix, and shows that precisely that port flags it while
// every other monitored port on the path stays silent.
//
//	go run ./examples/full_deployment
package main

import (
	"fmt"

	"fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/topo"
)

func main() {
	s := fancy.NewSim(11)

	// The Abilene backbone, with a customer host on each coast.
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "cust-west", Attach: "seattle"},
		{Name: "cust-south", Attach: "atlanta"},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		panic(err)
	}

	// Two customer prefixes terminate in Atlanta; route everything.
	const pfxVideo = fancy.EntryID(100) // dedicated
	const pfxBulk = fancy.EntryID(900)  // best effort
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{
		pfxVideo: "cust-south", pfxBulk: "cust-south",
	}); err != nil {
		panic(err)
	}

	dep, err := n.DeployFancy(fancy.Config{
		HighPriority: []fancy.EntryID{pfxVideo},
		Tree:         tree.Params{Width: 64, Depth: 3, Split: 2, Pipelined: true},
		TreeSeed:     5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("deployed FANcY on %d switches, %d links monitored in both directions\n\n",
		len(dep.Detectors), len(spec.Links))

	// Seattle → Atlanta traffic crosses denver→kansascity→{indianapolis|houston}→atlanta.
	send := func(entry fancy.EntryID, pps int, stop fancy.Time) {
		host := n.Hosts["cust-west"]
		gap := fancy.Second / fancy.Time(pps)
		var tick func()
		tick = func() {
			if s.Now() >= stop {
				return
			}
			host.Send(&fancy.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
				Src: n.HostAddr("cust-west"), Proto: netsim.ProtoUDP, Size: 1200})
			s.Schedule(gap, tick)
		}
		s.Schedule(0, tick)
	}
	send(pfxVideo, 400, 10*fancy.Second)
	send(pfxBulk, 400, 10*fancy.Second)

	// A line card in Kansas City corrupts 2% of the video prefix's
	// packets toward Indianapolis.
	victim := [2]string{"kansascity", "indianapolis"}
	fmt.Printf("injecting 2%% gray loss for prefix %d on %s→%s at t=3s\n\n",
		pfxVideo, victim[0], victim[1])
	n.Direction(victim[0], victim[1]).SetFailure(
		netsim.FailEntries(13, 3*fancy.Second, 0.02, pfxVideo))

	s.Run(10 * fancy.Second)

	// Where was it flagged?
	flagged := n.FlaggedAt(dep, pfxVideo)
	fmt.Printf("prefix %d flagged at: %v\n", pfxVideo, flagged)
	fmt.Printf("prefix %d flagged at: %v (healthy: must be empty)\n\n", pfxBulk, n.FlaggedAt(dep, pfxBulk))

	for _, de := range dep.Events {
		if de.Event.Kind == fancy.EventDedicated {
			fmt.Printf("first detection: switch %s at %.2fs (%.0f ms after failure)\n",
				de.Switch, de.Event.Time.Seconds(), (de.Event.Time-3*fancy.Second).Seconds()*1000)
			break
		}
	}
	fmt.Println("\nOnly the faulty port's upstream switch raises the flag: the gray")
	fmt.Println("failure is localized to (switch port, prefix) — enough to reroute or page.")
}
