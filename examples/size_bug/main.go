// Size-specific gray failure: localizing a Table 1 bug class with a
// custom counting session.
//
// Cisco bug CSCtc33158 ("drops random sized L2TPv3 packets") is the kind
// of failure per-prefix counters can detect but not explain: every prefix
// loses a little, and nothing points at packet size. FANcY's counting
// protocol is extensible (§4.1): this program attaches a custom session
// that synchronizes per-packet-size bucket counters across the link, so
// the mismatch report names the failing size range directly.
//
//	go run ./examples/size_bug
package main

import (
	"fmt"
	"sort"

	"fancy"
	core "fancy/internal/fancy"
	"fancy/internal/netsim"
)

func main() {
	s := fancy.NewSim(9)
	ml := fancy.NewMonitoredLink(s, fancy.Config{
		HighPriority: []fancy.EntryID{10},
		MemoryBytes:  20_000,
	})

	// The custom unit rides the same stop-and-wait FSMs as the regular
	// counters: sender side upstream, receiver side downstream.
	sender := core.NewSizeHistogramUnit()
	receiver := core.NewSizeHistogramUnit()
	unit := ml.Upstream.MonitorCustom(ml.MonitorPort(), 100*fancy.Millisecond, sender)
	ml.Downstream.ListenCustom(0, unit, receiver)

	sender.OnMismatch = func(bucket int, diff uint64) {
		fmt.Printf("%8.3fs  size bucket %-10s lost %d packets\n",
			s.Now().Seconds(), core.BucketRange(bucket), diff)
	}

	// A traffic mix of distinct packet sizes on several prefixes.
	sizes := []int{128, 512, 832, 1400}
	for i, size := range sizes {
		entry := fancy.EntryID(50 + i)
		sz := size
		var tick func()
		tick = func() {
			if s.Now() >= 8*fancy.Second {
				return
			}
			ml.Src.Send(&fancy.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
				Proto: netsim.ProtoUDP, Size: sz})
			s.Schedule(3*fancy.Millisecond, tick)
		}
		s.Schedule(fancy.Time(i)*fancy.Millisecond, tick)
	}

	// The bug: packets of 800–900 bytes silently dropped from t=2s.
	fmt.Println("injecting a size-specific bug (drops 800-900B packets) at t=2s")
	fmt.Println()
	ml.Link.AB.SetFailure(netsim.FailSizes(3, 2*fancy.Second, 800, 900, 1.0))

	s.Run(8 * fancy.Second)

	fmt.Println("\nflagged size buckets:")
	buckets := make([]int, 0, len(sender.FlaggedBuckets))
	for b := range sender.FlaggedBuckets {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		fmt.Printf("  %s\n", core.BucketRange(b))
	}
	fmt.Println("\nThe report points an operator straight at the failing size range —")
	fmt.Println("root-cause context no per-prefix counter can provide (§4.1, Table 1).")
}
