// Trace replay: FANcY on a CAIDA-like workload (§5.2 of the paper).
//
// The program synthesizes a scaled-down version of a CAIDA trace (the real
// traces are not redistributable; the synthesizer matches their published
// aggregate statistics and heavy-tailed per-prefix distribution), allocates
// dedicated counters to the historically largest prefixes, replays the
// trace's TCP flows through a monitored link, blackholes a handful of
// prefixes, and reports what FANcY detected and how fast.
//
//	go run ./examples/trace_replay
package main

import (
	"fmt"

	"fancy"
	"fancy/internal/netsim"
	"fancy/internal/tcp"
	"fancy/internal/traffic"
)

func main() {
	s := fancy.NewSim(42)

	// A 1/400-scale equinix-chicago trace: ≈15 Mbps over ≈600 prefixes.
	traceCfg := traffic.StandardTraces(400)[0]
	traceCfg.Duration = 20 * fancy.Second
	tr := traffic.Synthesize(traceCfg)
	st := tr.Stats()
	fmt.Printf("synthesized %s: %.1f Mbps, %.0f flows/s, %d active prefixes\n\n",
		traceCfg.Name, st.BitRateBps/1e6, st.FlowRate, st.ActivePfx)

	// Dedicated counters for the historical top 100 prefixes.
	hp := make([]fancy.EntryID, 100)
	for i := range hp {
		hp[i] = fancy.EntryID(i)
	}
	ml := fancy.NewMonitoredLink(s, fancy.Config{
		HighPriority: hp,
		MemoryBytes:  20_000,
	})

	detectedAt := map[fancy.EntryID]fancy.Time{}
	pathOf := map[string]fancy.EntryID{}

	// Fail four prefixes that actually carry traffic in this slice: the
	// two biggest dedicated ones and the two biggest best-effort ones.
	var failed []fancy.EntryID
	for _, e := range tr.SliceTop(200) {
		_, dedicated := ml.Upstream.DedicatedSlot(e)
		nDed, nTree := 0, 0
		for _, f := range failed {
			if _, d := ml.Upstream.DedicatedSlot(f); d {
				nDed++
			} else {
				nTree++
			}
		}
		if (dedicated && nDed < 2) || (!dedicated && nTree < 2) {
			failed = append(failed, e)
		}
		if len(failed) == 4 {
			break
		}
	}
	for _, e := range failed {
		if _, ok := ml.Upstream.DedicatedSlot(e); !ok {
			pathOf[fmt.Sprint(ml.Upstream.EntryPath(ml.MonitorPort(), e))] = e
		}
	}
	ml.OnEvent(func(ev fancy.Event) {
		switch ev.Kind {
		case fancy.EventDedicated:
			if _, seen := detectedAt[ev.Entry]; !seen {
				detectedAt[ev.Entry] = ev.Time
			}
		case fancy.EventTreeLeaf:
			if e, ok := pathOf[fmt.Sprint(ev.Path)]; ok {
				if _, seen := detectedAt[e]; !seen {
					detectedAt[e] = ev.Time
				}
			}
		}
	})

	// Replay the trace's flows as closed-loop TCP.
	drv := traffic.NewDriver(s, ml.Src, ml.Dst, tcp.Config{})
	drv.Schedule(tr.Specs)

	const failAt = 5 * fancy.Second
	fmt.Printf("blackholing prefixes %v at t=%v\n\n", failed, failAt)
	ml.Link.AB.SetFailure(netsim.FailEntries(7, failAt, 1.0, failed...))

	s.Run(traceCfg.Duration)

	bytesOf := map[fancy.EntryID]int64{}
	for _, f := range tr.Specs {
		bytesOf[f.Entry] += f.Bytes
	}
	fmt.Println("results:")
	for _, e := range failed {
		kind := "hash-tree"
		if _, ok := ml.Upstream.DedicatedSlot(e); ok {
			kind = "dedicated"
		}
		if at, ok := detectedAt[e]; ok {
			fmt.Printf("  prefix %-4d (%-9s, %6.1f KB in slice): detected %.2fs after failure\n",
				e, kind, float64(bytesOf[e])/1024, (at - failAt).Seconds())
		} else {
			fmt.Printf("  prefix %-4d (%-9s, %6.1f KB in slice): NOT detected "+
				"(too little traffic for drops in %d consecutive sessions)\n",
				e, kind, float64(bytesOf[e])/1024, 3)
		}
	}
	fmt.Printf("\nflows replayed: %d (completed: %d)\n", drv.Started(), drv.Completed())
}
