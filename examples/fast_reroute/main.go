// Fast reroute: the paper's §6.1 case study at simulation scale.
//
// A FANcY switch forwards a customer's traffic over a primary link. At
// t=2s the link starts dropping 10% of that entry's packets (a gray
// failure: BFD sees nothing, the link stays "up"). FANcY detects the
// counter mismatch within one counting session and the rerouting
// application flips the entry to a backup next hop — sub-second, and only
// for the affected entry; a second, healthy entry stays on the primary.
//
// The program prints delivered throughput in 100 ms bins so the dip and
// recovery are visible, like Figure 10.
//
//	go run ./examples/fast_reroute
package main

import (
	"fmt"
	"strings"

	"fancy"
	"fancy/internal/netsim"
	"fancy/internal/reroute"
	"fancy/internal/tcp"
	"fancy/internal/traffic"
)

func main() {
	s := fancy.NewSim(3)

	src := fancy.NewHost(s, "sender")
	dst := fancy.NewHost(s, "receiver")
	up := fancy.NewSwitch(s, "fancy-switch", 3)
	down := fancy.NewSwitch(s, "link-switch", 3)
	lc := netsim.LinkConfig{Delay: 2 * fancy.Millisecond, RateBps: 10e9}
	fancy.Connect(s, src, 0, up, 0, lc)
	primary := fancy.Connect(s, up, 1, down, 0, lc)
	fancy.Connect(s, up, 2, down, 2, lc) // backup
	fancy.Connect(s, down, 1, dst, 0, lc)
	down.Routes.Insert(0, 0, fancy.Route{Port: 1, Backup: -1})
	up.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, fancy.Route{Port: 0, Backup: -1})
	down.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, fancy.Route{Port: 0, Backup: -1})
	src.Default = netsim.PacketHandlerFunc(func(*fancy.Packet) {})

	const victim = fancy.EntryID(10)
	const healthy = fancy.EntryID(20)
	cfg := fancy.Config{
		HighPriority:     []fancy.EntryID{victim, healthy},
		MemoryBytes:      20_000,
		ExchangeInterval: 200 * fancy.Millisecond, // §6's session duration
	}
	det, err := fancy.NewDetector(s, up, cfg)
	if err != nil {
		panic(err)
	}
	downDet, err := fancy.NewDetector(s, down, cfg)
	if err != nil {
		panic(err)
	}
	downDet.ListenPort(0)
	det.MonitorPort(1)

	app := reroute.New(s, det, 1)
	det.OnEvent = app.HandleEvent
	app.OnReroute = func(e fancy.EntryID, at fancy.Time) {
		fmt.Printf("%.3fs  REROUTED entry %d to the backup link\n", at.Seconds(), e)
	}
	for _, e := range []fancy.EntryID{victim, healthy} {
		app.Protect(e, up.Routes.InsertEntry(e, fancy.Route{Port: 1, Backup: 2}))
	}

	// 20 Mbps of TCP plus a small UDP stream per entry.
	const duration = 8 * fancy.Second
	drv := traffic.NewDriver(s, src, dst, tcp.Config{})
	rng := s.Rand()
	drv.Schedule(traffic.SteadyEntry(victim, 20e6, 30, duration, rng))
	drv.Schedule(traffic.SteadyEntry(healthy, 20e6, 30, duration, rng))
	traffic.NewUDPSource(s, src, 9001, victim, netsim.EntryAddr(victim, 2), 1e6, 1000, duration).Start()

	// Throughput accounting in 100 ms bins, tapped at the downstream
	// switch's forwarding step so both TCP and UDP deliveries count.
	const bin = 100 * fancy.Millisecond
	bins := map[fancy.EntryID][]float64{victim: make([]float64, duration/bin), healthy: make([]float64, duration/bin)}
	down.OnForwarded(func(p *fancy.Packet, in, out int) {
		if out != 1 { // only packets toward the receiver
			return
		}
		if b, ok := bins[p.Entry]; ok {
			i := int(s.Now() / bin)
			if i < len(b) {
				b[i] += float64(p.Size) * 8
			}
		}
	})
	dst.Default = netsim.PacketHandlerFunc(func(*fancy.Packet) {})

	const failAt = 2 * fancy.Second
	fmt.Printf("injecting 10%% gray loss for entry %d on the primary link at t=%v\n\n", victim, failAt)
	primary.AB.SetFailure(netsim.FailEntries(5, failAt, 0.10, victim))

	s.Run(duration)

	fmt.Println("\ndelivered throughput (Mbps per 100 ms bin):")
	for _, e := range []fancy.EntryID{victim, healthy} {
		fmt.Printf("entry %d: ", e)
		var cells []string
		for _, v := range bins[e] {
			cells = append(cells, fmt.Sprintf("%.0f", v/bin.Seconds()/1e6))
		}
		fmt.Println(strings.Join(cells, " "))
	}
	fmt.Printf("\nvictim rerouted: %v   healthy rerouted: %v (must stay false)\n",
		app.Rerouted(victim), app.Rerouted(healthy))
}
